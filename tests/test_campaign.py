"""Tests for pluggable store backends and campaign lease mode.

The load-bearing properties (DESIGN.md §17):

* the same logical content yields bit-identical ``content_digest()``
  whichever backend holds it — single-file JSONL, sharded JSONL, SQLite;
* compact and merge are idempotent and crash-safe on every backend;
* N concurrent lease-mode workers execute each spec exactly once and
  converge on the serial digest, including when a worker is killed
  mid-lease (the chaos-harness case);
* ``cache_from`` makes a superset campaign execute only the new specs.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.sweep import (
    ResultStore,
    RunSpec,
    SweepRunner,
    default_quarantine_path,
    run_campaign,
    sidecar_path,
)
from repro.sweep.backends import (
    JsonlBackend,
    ShardedJsonlBackend,
    SqliteBackend,
    detect_backend_kind,
)
from repro.sweep.campaign import (
    FileLeases,
    SqliteLeases,
    campaign_status,
    make_lease_store,
)
from repro.sweep.chaos import CHAOS_ENV, ChaosPlan, Fault
from repro.telemetry import default_manifest_path

SHORT_NS = 150_000.0


def tiny_spec(**overrides) -> RunSpec:
    base = dict(scale="tiny", load=0.25, seed=2024, duration_ns=SHORT_NS)
    base.update(overrides)
    return RunSpec(**base)


def grid_specs(n: int = 6) -> list[RunSpec]:
    return [tiny_spec(load=round(0.1 + 0.05 * i, 2)) for i in range(n)]


def serial_digest(specs, tmp_path: Path) -> str:
    """The golden digest: one serial sweep into a plain JSONL store."""
    store = ResultStore(tmp_path / "golden.jsonl")
    SweepRunner(store=store).run(specs)
    return store.content_digest()


# ---------------------------------------------------------------------------
# backend detection and sidecar derivation
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_detects_by_suffix_and_disk_state(self, tmp_path):
        assert detect_backend_kind("campaign.jsonl") == "jsonl"
        assert detect_backend_kind("campaign.db") == "sqlite"
        assert detect_backend_kind("campaign.sqlite3") == "sqlite"
        assert detect_backend_kind("anything.txt") == "jsonl"
        shard_dir = tmp_path / "campdir"
        shard_dir.mkdir()
        assert detect_backend_kind(shard_dir) == "sharded"

    def test_explicit_backend_pins_kind(self, tmp_path):
        store = ResultStore(tmp_path / "flat", backend="sharded", shards=4)
        assert store.backend_kind == "sharded"
        assert isinstance(store.backend, ShardedJsonlBackend)

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            ResultStore(tmp_path / "x.jsonl", backend="csv")

    def test_reopening_sharded_store_keeps_shard_count(self, tmp_path):
        path = tmp_path / "sharded"
        store = ResultStore(path, backend="sharded", shards=4)
        store.put(tiny_spec(), _summary_of(tiny_spec()))
        again = ResultStore(path)
        assert again.backend.num_shards == 4
        with pytest.raises(ValueError, match="sharded 4 ways"):
            ResultStore(path, backend="sharded", shards=8)

    def test_sidecars_never_lose_non_jsonl_suffixes(self, tmp_path):
        # The satellite fix: the old derivation string-replaced ".jsonl"
        # and mangled SQLite paths into their own data files.
        assert default_quarantine_path("camp.jsonl") == Path(
            "camp.quarantine.jsonl"
        )
        assert default_quarantine_path("camp.db") == Path(
            "camp.db.quarantine.jsonl"
        )
        assert default_manifest_path("campaign.jsonl") == Path(
            "campaign.manifest.json"
        )
        assert default_manifest_path("campaign.db") == Path(
            "campaign.db.manifest.json"
        )
        shard_dir = tmp_path / "sharded"
        shard_dir.mkdir()
        assert default_quarantine_path(shard_dir) == (
            shard_dir / "quarantine.jsonl"
        )
        assert default_manifest_path(shard_dir) == (
            shard_dir / "manifest.json"
        )

    def test_sharded_sidecars_invisible_to_the_shard_reader(self, tmp_path):
        store = ResultStore(tmp_path / "dir", backend="sharded", shards=2)
        spec = tiny_spec()
        store.put(spec, _summary_of(spec))
        sidecar = sidecar_path(store.path, "quarantine.jsonl")
        sidecar.write_text("{not json at all\n")
        fresh = ResultStore(store.path)
        assert fresh.verify().ok
        assert len(fresh.rows()) == 1


def _summary_of(spec: RunSpec):
    from repro.sweep import execute_spec

    return execute_spec(spec)


# ---------------------------------------------------------------------------
# cross-backend equivalence
# ---------------------------------------------------------------------------


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def executed(self, tmp_path_factory):
        """One real execution of a small grid, reused across this class."""
        tmp = tmp_path_factory.mktemp("equiv")
        specs = grid_specs(4)
        store = ResultStore(tmp / "golden.jsonl")
        SweepRunner(store=store).run(specs)
        return specs, store.load(), store.content_digest()

    def _populate(self, store, specs, summaries):
        for spec in specs:
            store.put(spec, summaries[spec.content_hash], elapsed_s=0.5)

    @pytest.mark.parametrize("backend", ["jsonl", "sharded", "sqlite"])
    def test_same_content_same_digest_every_backend(
        self, tmp_path, executed, backend
    ):
        specs, summaries, golden = executed
        suffix = {"jsonl": "s.jsonl", "sharded": "sdir", "sqlite": "s.db"}
        store = ResultStore(
            tmp_path / suffix[backend], backend=backend, shards=3
        )
        self._populate(store, specs, summaries)
        assert store.content_digest() == golden
        report = store.verify()
        assert report.ok
        assert report.unique_hashes == len(specs)

    @pytest.mark.parametrize("backend", ["jsonl", "sharded", "sqlite"])
    def test_compact_preserves_digest_and_is_idempotent(
        self, tmp_path, executed, backend
    ):
        specs, summaries, golden = executed
        store = ResultStore(tmp_path / "c", backend=backend, shards=3)
        self._populate(store, specs, summaries)
        # Supersede one row.  Append-only backends keep both rows until
        # compact drops the stale one; SQLite upserts at write time, so
        # there is never a duplicate to drop.
        store.put(specs[0], summaries[specs[0].content_hash], elapsed_s=9.0)
        assert store.compact() == (0 if backend == "sqlite" else 1)
        assert store.content_digest() == golden
        assert store.compact() == 0  # second compact: nothing to do
        assert store.content_digest() == golden
        assert store.verify().ok

    @pytest.mark.parametrize("backend", ["jsonl", "sharded", "sqlite"])
    def test_merge_is_idempotent_and_digest_preserving(
        self, tmp_path, executed, backend
    ):
        specs, summaries, golden = executed
        half = len(specs) // 2
        left = ResultStore(tmp_path / "left.jsonl")
        self._populate(left, specs[:half], summaries)
        right = ResultStore(tmp_path / "right.db")
        # Overlap: right holds one of left's specs too.
        self._populate(right, specs[half - 1 :], summaries)
        merged = ResultStore(tmp_path / "m", backend=backend, shards=3)
        appended = merged.merge([left, right])
        assert appended == len(specs)
        assert merged.content_digest() == golden
        assert merged.merge([left, right]) == 0  # idempotent
        assert merged.content_digest() == golden

    def test_sharded_compact_crash_leaves_store_readable(
        self, tmp_path, executed, monkeypatch
    ):
        specs, summaries, golden = executed
        store = ResultStore(tmp_path / "crash", backend="sharded", shards=3)
        self._populate(store, specs, summaries)
        store.put(specs[0], summaries[specs[0].content_hash], elapsed_s=9.0)

        import repro.sweep.backends as backends_module

        real_replace = backends_module.os.replace
        calls = {"n": 0}

        def crashing_replace(src, dst):
            # Let the first shard land, then die: the canonical
            # mixed-old-and-new-shards crash state.
            calls["n"] += 1
            if calls["n"] > 1:
                raise OSError("simulated crash mid-compaction")
            return real_replace(src, dst)

        monkeypatch.setattr(backends_module.os, "replace", crashing_replace)
        with pytest.raises(OSError):
            store.compact()
        monkeypatch.setattr(backends_module.os, "replace", real_replace)

        survivor = ResultStore(store.path)
        assert survivor.content_digest() == golden
        assert survivor.compact() >= 0  # re-compact finishes the job
        assert survivor.verify().ok

    def test_sqlite_rewrite_rolls_back_on_error(self, tmp_path, executed):
        specs, summaries, golden = executed
        store = ResultStore(tmp_path / "roll.db")
        self._populate(store, specs, summaries)

        def poisoned_rows():
            yield "00aa", '{"spec_hash": "00aa"}\n'
            raise RuntimeError("simulated crash mid-rewrite")

        with pytest.raises(RuntimeError):
            store.backend.rewrite(poisoned_rows())
        assert store.content_digest() == golden
        assert store.verify().ok

    def test_sharded_detects_truncation_since_compact(
        self, tmp_path, executed
    ):
        specs, summaries, _ = executed
        store = ResultStore(tmp_path / "trunc", backend="sharded", shards=1)
        self._populate(store, specs, summaries)
        store.compact()
        shard = store.backend.shard_path(0)
        data = shard.read_bytes()
        shard.write_bytes(data[: len(data) // 2])
        report = ResultStore(store.path).verify()
        assert not report.ok
        assert any("truncated" in problem for problem in report.problems)


# ---------------------------------------------------------------------------
# lease stores
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def _lease_store(kind: str, tmp_path: Path, clock):
    if kind == "sqlite":
        backend = SqliteBackend(tmp_path / "leases.db")
        backend.connection()
        return SqliteLeases(backend, clock=clock)
    return FileLeases(tmp_path / "store.jsonl", clock=clock)


@pytest.mark.parametrize("kind", ["sqlite", "file"])
class TestLeaseStores:
    def test_claim_respects_limit_and_peer_leases(self, tmp_path, kind):
        clock = FakeClock()
        leases = _lease_store(kind, tmp_path, clock)
        hashes = ["aa", "bb", "cc", "dd"]
        got_a = leases.claim(hashes, "alice", ttl_s=10.0, limit=2)
        assert got_a == ["aa", "bb"]
        got_b = leases.claim(hashes, "bob", ttl_s=10.0, limit=4)
        assert got_b == ["cc", "dd"]  # alice's live leases are skipped

    def test_expired_lease_is_taken_over(self, tmp_path, kind):
        clock = FakeClock()
        leases = _lease_store(kind, tmp_path, clock)
        assert leases.claim(["aa"], "alice", ttl_s=10.0, limit=1) == ["aa"]
        assert leases.claim(["aa"], "bob", ttl_s=10.0, limit=1) == []
        clock.now += 11.0  # alice's lease expires un-renewed
        assert leases.claim(["aa"], "bob", ttl_s=10.0, limit=1) == ["aa"]

    def test_renew_extends_only_the_owners_lease(self, tmp_path, kind):
        clock = FakeClock()
        leases = _lease_store(kind, tmp_path, clock)
        leases.claim(["aa"], "alice", ttl_s=10.0, limit=1)
        clock.now += 8.0
        leases.renew("aa", "alice", ttl_s=10.0)
        clock.now += 8.0  # 16s after claim, 8s after renewal: still live
        assert leases.claim(["aa"], "bob", ttl_s=10.0, limit=1) == []
        leases.renew("aa", "bob", ttl_s=100.0)  # not bob's to renew
        owner, expires = leases.snapshot()["aa"]
        assert owner == "alice"
        # Renewed at t+8 for 10s: expiry is t+18, untouched by bob.
        assert expires == pytest.approx(clock.now - 8.0 + 10.0)

    def test_release_frees_the_spec(self, tmp_path, kind):
        clock = FakeClock()
        leases = _lease_store(kind, tmp_path, clock)
        leases.claim(["aa", "bb"], "alice", ttl_s=10.0, limit=2)
        leases.release(["aa"], "alice")
        assert leases.claim(["aa", "bb"], "bob", ttl_s=10.0, limit=2) == [
            "aa"
        ]

    def test_release_by_non_owner_is_a_noop(self, tmp_path, kind):
        clock = FakeClock()
        leases = _lease_store(kind, tmp_path, clock)
        leases.claim(["aa"], "alice", ttl_s=10.0, limit=1)
        leases.release(["aa"], "bob")
        assert leases.claim(["aa"], "bob", ttl_s=10.0, limit=1) == []


def test_make_lease_store_picks_the_backend_table(tmp_path):
    sqlite_store = ResultStore(tmp_path / "a.db")
    assert isinstance(make_lease_store(sqlite_store), SqliteLeases)
    jsonl_store = ResultStore(tmp_path / "a.jsonl")
    file_leases = make_lease_store(jsonl_store)
    assert isinstance(file_leases, FileLeases)
    assert file_leases.path == tmp_path / "a.leases.jsonl"


def test_file_leases_tolerate_a_torn_trailing_line(tmp_path):
    clock = FakeClock()
    leases = FileLeases(tmp_path / "store.jsonl", clock=clock)
    leases.claim(["aa"], "alice", ttl_s=10.0, limit=1)
    with leases.path.open("a") as handle:
        handle.write('{"spec_hash": "bb", "owner": "cr')  # torn mid-write
    assert leases.snapshot() == {"aa": ("alice", 1010.0)}


# ---------------------------------------------------------------------------
# campaigns: serial convergence, cache reuse
# ---------------------------------------------------------------------------


class TestCampaignSerial:
    def test_repeated_campaigns_converge_and_cache(self, tmp_path):
        specs = grid_specs(3)
        golden = serial_digest(specs, tmp_path)
        store = ResultStore(tmp_path / "fleet.db")
        first = run_campaign(specs, store, lease_ttl_s=30.0)
        assert (first.executed, first.cached) == (3, 0)
        assert store.content_digest() == golden
        second = run_campaign(specs, store, lease_ttl_s=30.0)
        assert (second.executed, second.cached) == (0, 3)
        assert store.content_digest() == golden
        # Leases are cleaned up: nothing held after a finished campaign.
        assert campaign_status(store)["active_leases"] == {}

    def test_cache_from_superset_executes_only_new_specs(self, tmp_path):
        old_specs = grid_specs(3)
        new_spec = tiny_spec(load=0.9)
        prior = ResultStore(tmp_path / "prior.jsonl")
        SweepRunner(store=prior).run(old_specs)
        golden = serial_digest(old_specs + [new_spec], tmp_path)

        store = ResultStore(tmp_path / "fleet.db")
        report = run_campaign(
            old_specs + [new_spec],
            store,
            cache_from=[prior],
            lease_ttl_s=30.0,
        )
        # The acceptance counter contract: only the genuinely new spec
        # executed; everything else was imported from the prior store.
        assert report.executed == 1
        assert report.imported == 3
        assert report.cached == 3
        assert store.content_digest() == golden

    def test_cache_from_works_across_backends(self, tmp_path):
        specs = grid_specs(2)
        prior = ResultStore(tmp_path / "prior", backend="sharded", shards=2)
        SweepRunner(store=prior).run(specs)
        golden = prior.content_digest()
        store = ResultStore(tmp_path / "fleet.jsonl")
        report = run_campaign(
            specs, store, cache_from=[prior], lease_ttl_s=30.0
        )
        assert report.executed == 0
        assert report.imported == 2
        assert store.content_digest() == golden

    def test_failed_specs_do_not_livelock_the_campaign(self, tmp_path):
        specs = grid_specs(2)
        doomed = specs[0]
        plan = ChaosPlan.from_faults(
            [Fault(match=doomed.content_hash[:8], kind="raise")]
        )
        os.environ[CHAOS_ENV] = plan.to_json()
        try:
            store = ResultStore(tmp_path / "fleet.db")
            report = run_campaign(
                specs, store, lease_ttl_s=30.0, on_error="skip"
            )
        finally:
            del os.environ[CHAOS_ENV]
        assert report.failed == 1
        assert report.executed == 1
        assert store.completed_hashes() == {specs[1].content_hash}

    def test_validates_lease_parameters(self, tmp_path):
        store = ResultStore(tmp_path / "fleet.db")
        with pytest.raises(ValueError, match="lease_ttl_s"):
            run_campaign([], store, lease_ttl_s=0.0)
        with pytest.raises(ValueError, match="lease_batch"):
            run_campaign([], store, lease_batch=0)


# ---------------------------------------------------------------------------
# campaigns: concurrent workers (the convergence contract)
# ---------------------------------------------------------------------------

CONCURRENT_NS = 400_000.0  # slower specs so two workers genuinely overlap


def _concurrent_specs() -> list[RunSpec]:
    return [
        tiny_spec(load=round(0.1 + 0.05 * i, 2), duration_ns=CONCURRENT_NS)
        for i in range(8)
    ]


def _campaign_worker(
    store_path: str,
    out_path: str,
    barrier,
    lease_ttl_s: float,
    chaos_json: str | None = None,
) -> None:
    if chaos_json is not None:
        os.environ[CHAOS_ENV] = chaos_json
    store = ResultStore(store_path)
    if barrier is not None:
        barrier.wait(timeout=60)
    report = run_campaign(
        _concurrent_specs(),
        store,
        worker=f"worker-{os.getpid()}",
        lease_ttl_s=lease_ttl_s,
        lease_batch=1,
    )
    Path(out_path).write_text(json.dumps(report.to_dict()))


@pytest.mark.parametrize("store_name", ["fleet.db", "fleet.jsonl"])
def test_two_concurrent_workers_execute_each_spec_exactly_once(
    tmp_path, store_name
):
    specs = _concurrent_specs()
    golden = serial_digest(specs, tmp_path)
    store_path = tmp_path / store_name
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(2)
    outs = [tmp_path / f"report-{i}.json" for i in range(2)]
    workers = [
        ctx.Process(
            target=_campaign_worker,
            args=(str(store_path), str(out), barrier, 120.0),
        )
        for out in outs
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=180)
        assert worker.exitcode == 0
    reports = [json.loads(out.read_text()) for out in outs]
    # Exactly once: the executed counts add up to the grid with no
    # double-execution, and no worker starved.
    assert sum(r["executed"] for r in reports) == len(specs)
    assert all(r["executed"] >= 1 for r in reports)
    assert all(r["failed"] == 0 for r in reports)
    store = ResultStore(store_path)
    assert store.content_digest() == golden
    assert store.verify().ok


def test_worker_killed_mid_lease_is_taken_over(tmp_path):
    """The chaos case: a worker hangs holding leases and is killed.

    Its leases expire un-renewed, and a healthy late-starting worker
    takes over every spec — the store still converges on the serial
    digest and the dead worker contributes nothing.
    """
    specs = _concurrent_specs()
    golden = serial_digest(specs, tmp_path)
    store_path = tmp_path / "fleet.db"
    # The victim hangs forever inside its very first spec execution,
    # holding a claimed lease (chaos matches every grid spec).
    plan = ChaosPlan.from_faults(
        [Fault(match=spec.content_hash[:8], kind="hang") for spec in specs]
    )
    ctx = multiprocessing.get_context("fork")
    victim_out = tmp_path / "victim.json"
    victim = ctx.Process(
        target=_campaign_worker,
        args=(str(store_path), str(victim_out), None, 2.0, plan.to_json()),
    )
    victim.start()
    try:
        leases = make_lease_store(ResultStore(store_path))
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if store_path.exists() and leases.snapshot():
                break
            time.sleep(0.05)
        else:
            pytest.fail("victim never claimed a lease")
    finally:
        victim.terminate()
        victim.join(timeout=30)
    assert not victim_out.exists()  # died mid-lease, reported nothing

    store = ResultStore(store_path)
    report = run_campaign(
        specs, store, worker="survivor", lease_ttl_s=30.0, lease_batch=4
    )
    assert report.executed == len(specs)
    assert report.failed == 0
    assert store.content_digest() == golden


# ---------------------------------------------------------------------------
# campaign status and manifests
# ---------------------------------------------------------------------------


def test_campaign_status_reports_completion_and_leases(tmp_path):
    specs = grid_specs(2)
    store = ResultStore(tmp_path / "fleet.db")
    run_campaign(specs, store, lease_ttl_s=30.0)
    leases = make_lease_store(store)
    leases.claim(["f" * 64], "straggler", ttl_s=300.0, limit=1)
    status = campaign_status(store, specs + [tiny_spec(load=0.9)])
    assert status["backend"] == "sqlite"
    assert status["completed"] == 2
    assert status["total"] == 3
    assert status["pending"] == 1
    assert status["content_digest"] == store.content_digest()
    (lease,) = status["active_leases"].values()
    assert lease["owner"] == "straggler"
    assert 0 < lease["expires_in_s"] <= 300


def test_campaign_writes_a_per_worker_manifest(tmp_path):
    specs = grid_specs(2)
    store = ResultStore(tmp_path / "fleet.db")
    report = run_campaign(
        specs,
        store,
        worker="w1",
        lease_ttl_s=30.0,
        telemetry=tmp_path / "events.jsonl",
    )
    assert report.manifest_path == str(tmp_path / "fleet.db.manifest-w1.json")
    manifest = json.loads(Path(report.manifest_path).read_text())
    assert manifest["worker"] == "w1"
    assert manifest["counts"]["executed"] == 2
    assert manifest["store"] == str(store.path)
