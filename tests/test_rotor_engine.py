"""The RotorNet-style rotor baseline: schedule, relay, failures, timing.

The engine's defining invariants (DESIGN.md section 12):

* **Schedule coverage** — each round-robin cycle offers every ToR a
  connection to all N-1 other ToRs exactly once, on both fabrics, in every
  cycle; link failures drop transmissions, never schedule entries.
* **Per-cycle service** — with every pair backlogged and VLB off, one full
  cycle delivers exactly ``packets_per_slice`` payloads per ordered pair;
  failing a link zeroes exactly the pairs riding it and leaves every other
  pair's share untouched.
* **RotorLB discipline** — only lowest-band (elephant) bytes ever detour
  through an intermediate; mice keep their one-hop path.
* **Determinism** — identical construction yields bit-identical runs.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.experiments.common import MICRO, make_topology, sim_config
from repro.sim.config import EpochConfig, RotorConfig, transmit_ns
from repro.sim.failures import (
    Direction,
    FailurePlan,
    LinkFailureModel,
    LinkRef,
)
from repro.sim.flows import Flow
from repro.sim.rotor import RotorSimulator

NUM_TORS = MICRO.num_tors
PORTS = MICRO.ports_per_tor


def _sim(flows, *, topology="thinclos", rotor=None, pq=True, **kwargs):
    return RotorSimulator(
        sim_config(MICRO, priority_queue_enabled=pq),
        make_topology(MICRO, topology),
        flows,
        rotor=rotor,
        **kwargs,
    )


def _all_pairs_elephants(size_bytes: int) -> list[Flow]:
    flows = []
    fid = 0
    for src in range(NUM_TORS):
        for dst in range(NUM_TORS):
            if src != dst:
                flows.append(Flow(fid, src, dst, size_bytes, 0.0))
                fid += 1
    return flows


# ---------------------------------------------------------------------------
# rotor config
# ---------------------------------------------------------------------------


class TestRotorConfig:
    def test_defaults_validate(self):
        rotor = RotorConfig()
        assert rotor.packets_per_slice > 0
        assert rotor.vlb_relay

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="packets_per_slice"):
            RotorConfig(packets_per_slice=0)
        with pytest.raises(ValueError, match="reconfiguration_delay_ns"):
            RotorConfig(reconfiguration_delay_ns=-1.0)

    def test_slice_timing(self):
        epoch = EpochConfig()
        rotor = RotorConfig(packets_per_slice=10, reconfiguration_delay_ns=50.0)
        tx = transmit_ns(
            epoch.data_header_bytes + epoch.data_payload_bytes, 100.0
        )
        assert rotor.slice_ns(epoch, 100.0) == 50.0 + 10 * tx
        duty = rotor.duty_cycle(epoch, 100.0)
        assert duty == pytest.approx(10 * tx / (50.0 + 10 * tx))


# ---------------------------------------------------------------------------
# schedule coverage: all N-1 destinations exactly once per cycle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("topology_kind", ["thinclos", "parallel"])
@pytest.mark.parametrize("cycle", [0, 1, 5])
def test_cycle_covers_all_destinations_exactly_once(topology_kind, cycle):
    sim = _sim([], topology=topology_kind)
    topology = sim.topology
    for tor in range(NUM_TORS):
        peers = Counter()
        for slot in range(sim.cycle_slots):
            for port in range(PORTS):
                peer = topology.predefined_peer(tor, port, slot, cycle)
                if peer is not None:
                    peers[peer] += 1
        assert peers == Counter(
            {other: 1 for other in range(NUM_TORS) if other != tor}
        ), f"cycle {cycle} of {topology_kind} misses/repeats a destination"


def test_cycle_coverage_is_failure_independent():
    """Failures drop transmissions; the rotation itself never changes."""
    model = LinkFailureModel(NUM_TORS, PORTS)
    plan = FailurePlan()
    plan.add_failure(0.0, LinkRef(0, 0, Direction.EGRESS))
    plan.add_failure(0.0, LinkRef(3, 1, Direction.INGRESS))
    sim = _sim([], failure_model=model, failure_plan=plan)
    reference = _sim([])
    for slice_index in (0, sim.cycle_slots - 1, 3 * sim.cycle_slots):
        slot = slice_index % sim.cycle_slots
        cycle = slice_index // sim.cycle_slots
        for tor in range(NUM_TORS):
            for port in range(PORTS):
                assert sim.topology.predefined_peer(
                    tor, port, slot, cycle
                ) == reference.topology.predefined_peer(tor, port, slot, cycle)


# ---------------------------------------------------------------------------
# per-cycle service shares
# ---------------------------------------------------------------------------


def _delivered_per_pair(sim, flows):
    delivered = {}
    for flow in flows:
        delivered[(flow.src, flow.dst)] = (
            flow.size_bytes - flow.remaining_bytes
        )
    return delivered


def test_one_cycle_serves_every_pair_its_full_slice():
    # PIAS off: a single band means every packet is a full payload, so the
    # per-cycle share is exactly packets_per_slice * payload bytes.
    rotor = RotorConfig(vlb_relay=False)
    flows = _all_pairs_elephants(10_000_000)
    sim = _sim(flows, rotor=rotor, pq=False)
    payload = sim.payload_bytes
    for _ in range(sim.cycle_slots):
        sim.step_slice()
    expected = rotor.packets_per_slice * payload
    for pair, num_bytes in _delivered_per_pair(sim, flows).items():
        assert num_bytes == expected, f"pair {pair} served {num_bytes}"


def test_failed_link_zeroes_exactly_its_pairs():
    rotor = RotorConfig(vlb_relay=False)
    flows = _all_pairs_elephants(10_000_000)
    failed_port = 0
    model = LinkFailureModel(NUM_TORS, PORTS)
    plan = FailurePlan()
    plan.add_failure(0.0, LinkRef(0, failed_port, Direction.EGRESS))
    sim = _sim(
        flows, rotor=rotor, pq=False, failure_model=model, failure_plan=plan
    )
    topology = sim.topology
    for _ in range(sim.cycle_slots):
        sim.step_slice()
    expected = rotor.packets_per_slice * sim.payload_bytes
    affected = {
        (0, dst)
        for dst in range(1, NUM_TORS)
        if topology.predefined_assignment(0, dst)[1] == failed_port
    }
    assert affected, "the failed port must carry at least one pair"
    for pair, num_bytes in _delivered_per_pair(sim, flows).items():
        if pair in affected:
            assert num_bytes == 0, f"pair {pair} rode a dead link"
        else:
            assert num_bytes == expected, f"pair {pair} served {num_bytes}"


def test_repair_restores_service():
    rotor = RotorConfig(vlb_relay=False)
    flows = [Flow(0, 0, 1, 500_000, 0.0)]
    port = make_topology(MICRO, "thinclos").predefined_assignment(0, 1)[1]
    model = LinkFailureModel(NUM_TORS, PORTS)
    plan = FailurePlan()
    plan.add_failure(0.0, LinkRef(0, port, Direction.EGRESS))
    repair_ns = 20_000.0
    plan.add_repair(repair_ns, LinkRef(0, port, Direction.EGRESS))
    sim = _sim(flows, rotor=rotor, failure_model=model, failure_plan=plan)
    sim.run(repair_ns)
    assert sim.tracker.delivered_bytes == 0
    assert sim.run_until_complete(max_ns=10 * MICRO.duration_ns)
    assert sim.tracker.delivered_bytes == 500_000


# ---------------------------------------------------------------------------
# RotorLB relay discipline
# ---------------------------------------------------------------------------


def test_mice_never_detour():
    """Only lowest-band bytes relay; a mouse rides its direct slice."""
    flows = [Flow(0, 0, 1, 900, 0.0)]  # < first PIAS threshold: band 0
    sim = _sim(flows)
    assert sim.run_until_complete(max_ns=10 * MICRO.duration_ns)
    assert all(sim.relay_bytes_at(t) == 0 for t in range(NUM_TORS))
    assert sim.tracker.all_complete


def test_elephants_detour_and_arrive_once():
    """An elephant's lowest band spreads over intermediates; every byte is
    delivered exactly once (the tracker rejects over-delivery)."""
    size = 2_000_000
    flows = [Flow(0, 0, 1, size, 0.0)]
    sim = _sim(flows)
    relayed = 0
    while not sim.tracker.all_complete:
        sim.step_slice()
        relayed = max(relayed, sum(sim.relay_bytes_at(t) for t in range(NUM_TORS)))
        assert sim.now_ns < 100 * MICRO.duration_ns, "rotor failed to drain"
    assert relayed > 0, "VLB never engaged on a single-pair elephant"
    assert sim.tracker.delivered_bytes == size
    assert sim.total_queued_bytes == 0


def test_ineligible_relay_head_does_not_starve_direct_service():
    """A relay chunk forwardable only next slice must not burn the budget.

    _offload_indirect hands chunks over with next-slice-boundary
    eligibility; when the intermediate's rotor reaches the chunk's
    destination *in that same slice*, the relay step must yield the whole
    budget to the pair's direct backlog instead of idling slots away
    waiting for the ineligible head (the drain_slots-vs-drain_band_slots
    regression: direct service dropped to zero and the outcome depended on
    ToR iteration order).
    """
    from repro.sim.queues import PiasDestQueue

    direct = Flow(0, 0, 1, 2000, 0.0)
    sim = _sim([direct], rotor=RotorConfig(vlb_relay=False), pq=False)
    meeting_slot, _port = sim.topology.predefined_assignment(0, 1)
    # Hand-plant a relay chunk at ToR 0 for ToR 1 that becomes eligible
    # only after the slice in which 0 and 1 meet.
    relayed = Flow(99, 2, 1, 5000, 0.0)
    queue = PiasDestQueue(thresholds=(), enabled=False)
    queue.enqueue_bytes(
        relayed, 5000, band=0, eligible_ns=(meeting_slot + 1) * sim.slice_ns
    )
    sim._relay[0][1] = queue
    sim._relay_pending[0] += 5000
    for _ in range(meeting_slot + 1):
        sim.step_slice()
    assert direct.remaining_bytes == 0, (
        "the ineligible relay head consumed the slice budget"
    )


def test_vlb_speeds_up_skewed_traffic():
    """The point of the relay: a single hot pair finishes faster with VLB."""
    finish = {}
    for vlb in (False, True):
        flows = [Flow(0, 0, 1, 2_000_000, 0.0)]
        sim = _sim(flows, rotor=RotorConfig(vlb_relay=vlb))
        assert sim.run_until_complete(max_ns=100 * MICRO.duration_ns)
        finish[vlb] = sim.now_ns
    assert finish[True] < finish[False]


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def test_identical_runs_are_bit_identical():
    def run():
        flows = _all_pairs_elephants(100_000)
        sim = _sim(flows)
        sim.run(MICRO.duration_ns)
        return sim.summary(MICRO.duration_ns)

    first, second = run(), run()
    assert first == second
