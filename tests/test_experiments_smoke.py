"""Smoke tests: every experiment runs end to end at micro scale.

These validate the full harness graph — workload generation, both engines,
variants, failure plans, recorders, rendering — not the paper's numbers
(the benchmark suite checks shapes at real scales).
"""

import pytest

from repro.experiments import EXPERIMENT_MODULES, MICRO, load_experiment
from repro.experiments.common import ExperimentResult

# Experiments whose default sweeps are too heavy for a micro smoke run get
# reduced arguments.
RUN_KWARGS = {
    "fig12": {"load": 1.0},
    "fig13": {"loads": (1.0,)},
    "fig15": {"loads": (0.5, 1.0)},
    "table3": {"loads": (0.5, 1.0)},
    "table4": {"loads": (0.5, 1.0)},
    "table5": {"loads": (0.5, 1.0)},
    "table6": {"loads": (0.5, 1.0)},
}


@pytest.mark.parametrize("name", sorted(EXPERIMENT_MODULES))
def test_experiment_runs_at_micro_scale(name):
    module = load_experiment(name)
    result = module.run(MICRO, **RUN_KWARGS.get(name, {}))
    assert isinstance(result, ExperimentResult)
    assert result.rows, f"{name} produced no rows"
    rendered = result.render()
    assert result.experiment in rendered
    for header in result.headers:
        assert header in rendered
    # Every row matches the header width.
    for row in result.rows:
        assert len(row) == len(result.headers)
