"""Cross-system integration tests: the paper's headline comparisons in small.

These check the *shape* of the paper's results on tiny fabrics:

* NegotiaToR's mice FCT is far below the traffic-oblivious baseline under
  load (Fig 9a's one-to-two orders of magnitude).
* NegotiaToR sustains higher goodput than the baseline at heavy load while
  the baseline's relayed traffic competes for receiver bandwidth (Fig 9b).
* Incast finish time is flat in the incast degree for NegotiaToR (Fig 7a).
* Both topologies behave comparably under identical parameters (section 4.3).
"""

import random

import pytest

from repro import (
    NegotiaToRSimulator,
    ObliviousSimulator,
    ParallelNetwork,
    SimConfig,
    ThinClos,
    incast_finish_time_ns,
    incast_workload,
    poisson_workload,
)
from repro.workloads.traces import hadoop

N, S, W = 16, 4, 4
HOST_GBPS = S * 100.0 / 2.0  # keep the paper's 2x speedup


def config(**overrides):
    defaults = dict(
        num_tors=N, ports_per_tor=S, uplink_gbps=100.0,
        host_aggregate_gbps=HOST_GBPS,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


def workload(load, duration, seed):
    return poisson_workload(
        hadoop(), load, N, HOST_GBPS, duration, random.Random(seed)
    )


DURATION = 1_500_000  # 1.5 ms


@pytest.fixture(scope="module")
def heavy_load_runs():
    """One heavy-load run of each system, shared across assertions."""
    runs = {}
    cfg = config()
    flows = workload(1.0, DURATION, seed=11)
    sim = NegotiaToRSimulator(cfg, ParallelNetwork(N, S), flows)
    sim.run(DURATION)
    runs["nt_parallel"] = sim.summary()

    flows = workload(1.0, DURATION, seed=11)
    sim = NegotiaToRSimulator(cfg, ThinClos(N, S, W), flows)
    sim.run(DURATION)
    runs["nt_thinclos"] = sim.summary()

    flows = workload(1.0, DURATION, seed=11)
    sim = ObliviousSimulator(cfg, ThinClos(N, S, W), flows)
    sim.run(DURATION)
    runs["oblivious"] = sim.summary()
    return runs


class TestMainResultShape:
    def test_negotiator_mice_fct_is_an_order_of_magnitude_better(
        self, heavy_load_runs
    ):
        nt = heavy_load_runs["nt_parallel"].mice_fct_p99_ns
        ob = heavy_load_runs["oblivious"].mice_fct_p99_ns
        assert ob > 10 * nt

    def test_negotiator_goodput_beats_baseline_at_heavy_load(
        self, heavy_load_runs
    ):
        assert (
            heavy_load_runs["nt_parallel"].goodput_normalized
            > heavy_load_runs["oblivious"].goodput_normalized
        )

    def test_topologies_perform_comparably(self, heavy_load_runs):
        """Thin-clos is marginally below parallel, not qualitatively off."""
        parallel = heavy_load_runs["nt_parallel"].goodput_normalized
        thinclos = heavy_load_runs["nt_thinclos"].goodput_normalized
        assert thinclos <= parallel + 0.02
        assert thinclos > 0.5 * parallel

    def test_negotiator_average_mice_fct_is_about_two_epochs(
        self, heavy_load_runs
    ):
        """The scheduling-delay bypass keeps mean mice FCT near 2 epochs
        (the paper's Table 2 reports 1.6)."""
        for key in ("nt_parallel", "nt_thinclos"):
            mean_epochs = heavy_load_runs[key].mice_fct_mean_epochs
            assert 1.0 <= mean_epochs <= 3.5

    def test_goodput_is_substantial_at_full_load(self, heavy_load_runs):
        assert heavy_load_runs["nt_parallel"].goodput_normalized > 0.7


class TestIncastShape:
    def run_incast(self, system, degree):
        cfg = config()
        flows = incast_workload(
            N, degree, dst=0, at_ns=10_000.0, rng=random.Random(degree)
        )
        if system == "negotiator":
            sim = NegotiaToRSimulator(cfg, ParallelNetwork(N, S), flows)
        else:
            sim = ObliviousSimulator(cfg, ThinClos(N, S, W), flows)
        assert sim.run_until_complete(max_ns=10_000_000)
        return incast_finish_time_ns(sim.tracker.flows, 10_000.0)

    def test_negotiator_finish_time_is_flat_in_degree(self):
        low = self.run_incast("negotiator", 2)
        high = self.run_incast("negotiator", 15)
        assert high <= low * 1.5

    def test_negotiator_finish_time_is_about_two_epochs(self):
        finish = self.run_incast("negotiator", 10)
        epoch_ns = 4 * 60 + 30 * 90
        assert finish < 4 * epoch_ns


class TestLightLoadBehaviour:
    def test_goodput_tracks_offered_load_when_light(self):
        cfg = config()
        flows = workload(0.25, DURATION, seed=21)
        sim = NegotiaToRSimulator(cfg, ParallelNetwork(N, S), flows)
        sim.run(DURATION)
        goodput = sim.summary().goodput_normalized
        assert goodput == pytest.approx(0.25, abs=0.08)

    def test_baseline_also_fine_when_light(self):
        """At light load the oblivious design has empty links to relay over
        — its goodput is close to NegotiaToR's (Fig 9b's left side)."""
        cfg = config()
        flows = workload(0.25, DURATION, seed=21)
        sim = ObliviousSimulator(cfg, ThinClos(N, S, W), flows)
        sim.run(DURATION)
        assert sim.summary().goodput_normalized == pytest.approx(0.25, abs=0.08)
