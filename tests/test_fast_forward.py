"""Determinism and exactness of the idle-epoch fast-forward (DESIGN.md §7).

Fast-forward is a pure wall-clock optimization: with a fixed seed, a run
with it enabled must be indistinguishable — RunSummary, per-flow FCTs,
epoch counts at exit — from a run with it disabled.  These tests exercise
the regimes that make the skip logic subtle: arrivals on and off epoch
boundaries, failure events mid-idle, pipeline drain tails, thin-clos, the
selective relay subclass, and receiver buffers.
"""

import copy
import dataclasses
import random

import pytest

from repro import (
    Flow,
    NegotiaToRSimulator,
    ParallelNetwork,
    SimConfig,
    ThinClos,
    poisson_workload,
)
from repro.core.relay import SelectiveRelaySimulator
from repro.sim.config import EpochTiming
from repro.sim.failures import Direction, FailurePlan, LinkRef
from repro.sim.observability import EpochStatsRecorder
from repro.workloads.traces import hadoop

EPOCH_NS = 4 * 60 + 30 * 90  # 8 ToRs x 2 ports on the parallel network


def tiny_config(**overrides):
    defaults = dict(
        num_tors=8, ports_per_tor=2, uplink_gbps=100.0, host_aggregate_gbps=100.0
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


def sparse_flows(num_flows=12, gap_epochs=200, size=3000):
    """Flows separated by long idle gaps so fast-forward engages."""
    flows = []
    for i in range(num_flows):
        arrival = i * gap_epochs * EPOCH_NS + (i % 3) * 17.5
        src = i % 8
        dst = (i + 3) % 8
        flows.append(
            Flow(fid=i, src=src, dst=dst, size_bytes=size, arrival_ns=arrival)
        )
    return flows


def fct_map(sim):
    return {
        f.fid: f.completed_ns for f in sim.tracker.flows if f.completed
    }


def run_pair(flows, duration_ns, *, config=None, topology_cls=ParallelNetwork,
             sim_cls=NegotiaToRSimulator, failure_plan=None, **sim_kwargs):
    """Run the same workload with fast-forward on and off; return both sims."""
    config = config or tiny_config()
    sims = []
    for enabled in (True, False):
        cfg = dataclasses.replace(config, idle_fast_forward=enabled)
        if topology_cls is ThinClos:
            topology = ThinClos(cfg.num_tors, cfg.ports_per_tor, 4)
        else:
            topology = topology_cls(cfg.num_tors, cfg.ports_per_tor)
        # Flows are mutable records; each run needs its own copies.
        sim = sim_cls(
            cfg,
            topology,
            copy.deepcopy(flows),
            failure_plan=failure_plan,
            **sim_kwargs,
        )
        sim.run(duration_ns)
        sims.append(sim)
    return sims


def assert_equivalent(fast, slow, duration_ns):
    assert fast.fast_forwarded_epochs > 0, "fast-forward never engaged"
    assert slow.fast_forwarded_epochs == 0
    assert fast.epoch == slow.epoch
    assert fct_map(fast) == fct_map(slow)
    assert fast.summary(duration_ns) == slow.summary(duration_ns)


class TestDeterminismRegression:
    def test_sparse_trace_identical_with_and_without_fast_forward(self):
        flows = sparse_flows()
        duration = 13 * 200 * EPOCH_NS
        fast, slow = run_pair(flows, duration)
        assert_equivalent(fast, slow, duration)
        assert fast.summary(duration).num_completed == len(flows)

    def test_poisson_workload_identical(self):
        flows = poisson_workload(
            hadoop().truncated(100_000),
            0.02,
            8,
            100.0,
            3_000_000.0,
            random.Random(7),
        )
        fast, slow = run_pair(flows, 3_000_000.0)
        assert_equivalent(fast, slow, 3_000_000.0)

    def test_thinclos_identical(self):
        flows = sparse_flows()
        duration = 13 * 200 * EPOCH_NS
        fast, slow = run_pair(flows, duration, topology_cls=ThinClos)
        assert_equivalent(fast, slow, duration)

    def test_boundary_arrival_identical(self):
        # Arrivals exactly on epoch boundaries hit the mid-epoch-injection
        # edge case the jump-target analysis depends on.
        flows = [
            Flow(fid=i, src=i % 8, dst=(i + 1) % 8, size_bytes=2000,
                 arrival_ns=i * 150 * EPOCH_NS)
            for i in range(1, 9)
        ]
        duration = 9 * 150 * EPOCH_NS
        fast, slow = run_pair(flows, duration)
        assert_equivalent(fast, slow, duration)

    def test_failure_events_in_idle_gap_identical(self):
        # A failure fires and is repaired while the fabric is idle; the
        # fast-forwarded run must still detect and recover on the same
        # epochs, visible through identical FCTs of the later flows.
        flows = sparse_flows(num_flows=6, gap_epochs=300)
        plan = FailurePlan()
        link = LinkRef(tor=3, port=0, direction=Direction.EGRESS)
        plan.add_failure(50 * EPOCH_NS, link)
        plan.add_repair(700 * EPOCH_NS, link)
        duration = 7 * 300 * EPOCH_NS
        fast, slow = run_pair(flows, duration, failure_plan=plan)
        assert_equivalent(fast, slow, duration)

    def test_selective_relay_identical(self):
        flows = [
            Flow(fid=i, src=0, dst=5, size_bytes=200_000,
                 arrival_ns=i * 400 * EPOCH_NS)
            for i in range(3)
        ]
        duration = 4 * 400 * EPOCH_NS
        fast, slow = run_pair(
            flows, duration, topology_cls=ThinClos, sim_cls=SelectiveRelaySimulator
        )
        assert_equivalent(fast, slow, duration)

    def test_receiver_buffer_identical(self):
        flows = sparse_flows(size=30_000)
        config = tiny_config(receiver_buffer_bytes=50_000)
        duration = 13 * 200 * EPOCH_NS
        fast, slow = run_pair(flows, duration, config=config)
        assert_equivalent(fast, slow, duration)

    def test_non_dyadic_epoch_length_identical(self):
        # uplink 75 Gbps makes epoch_ns non-dyadic (3906.666... ns), so
        # (e + 1) * epoch_ns and e * epoch_ns + epoch_ns differ by 1 ulp for
        # many epochs; the fast-forward bound must use the engine's own
        # injection-bound expression or boundary arrivals shift by an epoch.
        config = tiny_config(uplink_gbps=75.0)
        timing = EpochTiming.derive(config.epoch, config.uplink_gbps, 4)
        epoch_ns = timing.epoch_ns
        assert epoch_ns != int(epoch_ns)  # non-dyadic, or the test is moot
        flows = []
        for i in range(1, 30):
            # Pin each arrival to a stepped run's exact injection bound:
            # the end of epoch (k - 1) as step_epoch computes it, which for
            # some k exceeds fl(k * epoch_ns) by 1 ulp — the window where a
            # mismatched fast-forward bound skips the injecting epoch.
            k = i * 137
            boundary = (k - 1) * epoch_ns + epoch_ns
            flows.append(
                Flow(fid=i, src=i % 8, dst=(i + 1) % 8, size_bytes=2000,
                     arrival_ns=boundary)
            )
        duration = 31 * 137 * epoch_ns
        fast, slow = run_pair(flows, duration, config=config)
        assert_equivalent(fast, slow, duration)

    def test_run_until_complete_identical(self):
        flows = sparse_flows()
        config = tiny_config()
        results = []
        for enabled in (True, False):
            cfg = dataclasses.replace(config, idle_fast_forward=enabled)
            sim = NegotiaToRSimulator(
                cfg, ParallelNetwork(8, 2), copy.deepcopy(flows)
            )
            done = sim.run_until_complete(max_ns=20 * 200 * EPOCH_NS)
            results.append((done, sim.epoch, fct_map(sim)))
        assert results[0] == results[1]


class TestFastForwardBehaviour:
    def test_idle_run_is_skipped_wholesale(self):
        sim = NegotiaToRSimulator(tiny_config(), ParallelNetwork(8, 2), [])
        sim.run(1000 * EPOCH_NS)
        assert sim.epoch == 1000
        assert sim.fast_forwarded_epochs == 1000

    def test_disabled_flag_steps_every_epoch(self):
        config = tiny_config(idle_fast_forward=False)
        sim = NegotiaToRSimulator(config, ParallelNetwork(8, 2), [])
        sim.run(50 * EPOCH_NS)
        assert sim.epoch == 50
        assert sim.fast_forwarded_epochs == 0

    def test_stats_recorder_disables_fast_forward(self):
        # Per-epoch recorders observe every epoch by contract.
        sim = NegotiaToRSimulator(tiny_config(), ParallelNetwork(8, 2), [])
        recorder = EpochStatsRecorder()
        sim.attach_stats_recorder(recorder)
        sim.run(40 * EPOCH_NS)
        assert sim.fast_forwarded_epochs == 0
        assert len(recorder) == 40

    def test_step_epoch_is_never_fast_forwarded(self):
        sim = NegotiaToRSimulator(tiny_config(), ParallelNetwork(8, 2), [])
        for _ in range(5):
            sim.step_epoch()
        assert sim.epoch == 5
        assert sim.fast_forwarded_epochs == 0

    def test_jump_stops_at_next_arrival_epoch(self):
        arrival = 500 * EPOCH_NS + 100.0  # inside epoch 500
        flows = [Flow(fid=0, src=0, dst=1, size_bytes=500, arrival_ns=arrival)]
        sim = NegotiaToRSimulator(tiny_config(), ParallelNetwork(8, 2), flows)
        sim.run(501 * EPOCH_NS)
        assert sim.summary().num_completed == 1
        # Epochs 0..499 are idle; the arrival epoch itself must be stepped.
        assert sim.fast_forwarded_epochs == 500
