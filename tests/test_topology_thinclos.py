"""Tests for the thin-clos topology (Fig 1b)."""

import pytest

from repro.topology.thinclos import ThinClos

SHAPES = [(8, 2, 4), (16, 4, 4), (128, 8, 16)]


def shape_ids(shape):
    return f"{shape[0]}={shape[1]}x{shape[2]}"


class TestStructure:
    def test_paper_scale_uses_64_16port_awgrs(self):
        topo = ThinClos(128, 8, 16)
        assert topo.num_awgrs == 64
        assert topo.awgr_ports == 16
        assert topo.predefined_slots == 16
        assert topo.num_groups == 8

    def test_rejects_unbalanced_shape(self):
        with pytest.raises(ValueError):
            ThinClos(12, 4, 4)  # 12 != 4 * 4

    def test_rejects_single_port_awgr(self):
        with pytest.raises(ValueError):
            ThinClos(4, 4, 1)

    def test_group_arithmetic(self):
        topo = ThinClos(16, 4, 4)
        assert topo.group(0) == 0
        assert topo.group(7) == 1
        assert topo.index_in_group(7) == 3
        assert topo.tor_at(1, 3) == 7


class TestReachability:
    def test_each_port_reaches_one_group(self):
        topo = ThinClos(16, 4, 4)
        # ToR 0 (group 0) port 1 reaches group 1 = ToRs 4..7.
        assert topo.reachable_dsts(0, 1) == (4, 5, 6, 7)

    def test_port_zero_reaches_own_group_except_self(self):
        topo = ThinClos(16, 4, 4)
        assert topo.reachable_dsts(5, 0) == (4, 6, 7)

    def test_reachable_srcs_mirror_dsts(self):
        topo = ThinClos(16, 4, 4)
        for tor in range(16):
            for port in range(4):
                for src in topo.reachable_srcs(tor, port):
                    assert tor in topo.reachable_dsts(src, port)

    def test_all_ports_together_reach_everyone(self):
        topo = ThinClos(16, 4, 4)
        for tor in range(16):
            union = set()
            for port in range(4):
                union.update(topo.reachable_dsts(tor, port))
            assert union == set(range(16)) - {tor}

    def test_data_port_is_group_difference(self):
        topo = ThinClos(16, 4, 4)
        assert topo.data_port(1, 6) == 1  # group 0 -> group 1
        assert topo.data_port(6, 1) == 3  # group 1 -> group 0 (wraps)
        assert topo.data_port(4, 6) == 0  # intra-group

    def test_single_path_property(self):
        """An ordered pair is connected by exactly one port-to-port path."""
        topo = ThinClos(16, 4, 4)
        for src in range(16):
            for dst in range(16):
                if src == dst:
                    continue
                port = topo.data_port(src, dst)
                assert dst in topo.reachable_dsts(src, port)
                for other in range(4):
                    if other != port:
                        assert dst not in topo.reachable_dsts(src, other)


@pytest.mark.parametrize("shape", SHAPES, ids=shape_ids)
class TestPredefinedSchedule:
    def test_every_ordered_pair_meets_exactly_once(self, shape):
        n, s, w = shape
        topo = ThinClos(n, s, w)
        seen = set()
        for tor in range(n):
            for port in range(s):
                for slot in range(topo.predefined_slots):
                    peer = topo.predefined_peer(tor, port, slot)
                    if peer is not None:
                        assert peer != tor
                        assert (tor, peer) not in seen
                        seen.add((tor, peer))
        assert len(seen) == n * (n - 1)

    def test_per_slot_connections_are_conflict_free(self, shape):
        n, s, w = shape
        topo = ThinClos(n, s, w)
        for slot in range(topo.predefined_slots):
            for port in range(s):
                peers = [
                    topo.predefined_peer(tor, port, slot) for tor in range(n)
                ]
                real = [p for p in peers if p is not None]
                assert len(real) == len(set(real))

    def test_assignment_inverts_peer(self, shape):
        n, s, w = shape
        topo = ThinClos(n, s, w)
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                slot, port = topo.predefined_assignment(src, dst)
                assert topo.predefined_peer(src, port, slot) == dst

    def test_assignment_port_matches_data_port(self, shape):
        """Control and data for a pair ride the same port in thin-clos."""
        n, s, w = shape
        topo = ThinClos(n, s, w)
        for src in range(0, n, max(1, n // 8)):
            for dst in range(n):
                if src == dst:
                    continue
                _slot, port = topo.predefined_assignment(src, dst)
                assert port == topo.data_port(src, dst)


class TestOpticalPaths:
    def test_path_identifies_group_awgr(self):
        topo = ThinClos(16, 4, 4)
        path = topo.optical_path(1, 6, port=1)  # group 0 -> group 1 AWGR
        assert path.awgr_id == 0 * 4 + 1
        assert path.input_port == 1  # index of ToR 1 in group 0
        assert path.output_port == 2  # index of ToR 6 in group 1

    def test_wrong_port_rejected(self):
        topo = ThinClos(16, 4, 4)
        with pytest.raises(ValueError):
            topo.optical_path(1, 6, port=2)

    def test_awgr_ids_are_dense_and_distinct(self):
        topo = ThinClos(16, 4, 4)
        ids = set()
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    ids.add(topo.optical_path(src, dst, topo.data_port(src, dst)).awgr_id)
        assert ids == set(range(topo.num_awgrs))
