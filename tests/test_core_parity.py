"""Differential tests: the vectorized cores against their scalar oracles.

DESIGN.md section 15 promises that ``SimConfig.core`` is a pure
performance switch — on a fixed seed the vectorized core produces
bit-identical results to the scalar reference engine.  These tests
enforce that promise with hypothesis-generated traces pushed through
both cores of all three engines (negotiator, oblivious, rotor), with and
without link failures, in materialized and streaming tracker modes.

There are no exceptions: streaming-mode FCT accumulators fold each
step's completions in canonical (completed_ns, fid) order (see
``FlowTracker.flush_completions``), so even the running-mean fields —
once allowed a last-ulp carve-out because the cores delivered within an
epoch in different orders — are bit-identical.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Flow, ObliviousSimulator, SimConfig, ThinClos
from repro.sim.factory import make_negotiator, vectorized_core_eligible
from repro.sim.failures import FailurePlan, random_failure_plan
from repro.sim.network import NegotiaToRSimulator
from repro.sim.rotor import RotorSimulator
from repro.sim.vectorized import VectorizedNegotiaToRSimulator
from repro.topology.parallel import ParallelNetwork

NUM_TORS = 8
PORTS = 2


def _config(seed: int, core: str, *, fast_forward: bool = True) -> SimConfig:
    return SimConfig(
        num_tors=NUM_TORS,
        ports_per_tor=PORTS,
        seed=seed,
        core=core,
        idle_fast_forward=fast_forward,
    )


def _flows(draw_pairs: list[tuple[int, int, int, int]]) -> list[Flow]:
    """Materialize hypothesis-drawn (src, dst_offset, bytes, gap) tuples.

    Engines mutate ``Flow`` objects in place (``remaining_bytes``,
    ``completed_ns``), so every simulator must get its own freshly-built
    list — call this once per engine, never share the result.
    """
    flows = []
    arrival = 0.0
    for fid, (src, dst_off, size, gap_ns) in enumerate(draw_pairs):
        dst = (src + 1 + dst_off) % NUM_TORS
        arrival += float(gap_ns)
        flows.append(Flow(fid, src, dst, size, arrival))
    return flows


flow_tuples = st.lists(
    st.tuples(
        st.integers(0, NUM_TORS - 1),       # src
        st.integers(0, NUM_TORS - 2),       # dst offset (never src)
        st.integers(1, 60_000),             # size_bytes
        st.integers(0, 30_000),             # inter-arrival gap ns
    ),
    min_size=1,
    max_size=40,
)


def _assert_summaries_identical(scalar_sim, vector_sim, *, stream: bool):
    ds = scalar_sim.summary().to_dict()
    dv = vector_sim.summary().to_dict()
    for key in ds:
        assert ds[key] == dv[key], key
    assert scalar_sim.epoch == vector_sim.epoch
    if not stream:
        sc = {f.fid: f.completed_ns for f in scalar_sim.tracker.flows}
        vc = {f.fid: f.completed_ns for f in vector_sim.tracker.flows}
        assert sc == vc


class TestNegotiatorParity:
    @given(pairs=flow_tuples, seed=st.integers(0, 2**16), ff=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_materialized_bit_identical(self, pairs, seed, ff):
        topo = ParallelNetwork(NUM_TORS, PORTS)
        s = NegotiaToRSimulator(
            _config(seed, "scalar", fast_forward=ff), topo, _flows(pairs)
        )
        v = VectorizedNegotiaToRSimulator(
            _config(seed, "vectorized", fast_forward=ff), topo, _flows(pairs)
        )
        assert s.run_until_complete(max_ns=1e12)
        assert v.run_until_complete(max_ns=1e12)
        _assert_summaries_identical(s, v, stream=False)

    @given(
        pairs=flow_tuples,
        seed=st.integers(0, 2**16),
        ratio=st.sampled_from([0.1, 0.25]),
        repair=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_link_failures_bit_identical(self, pairs, seed, ratio, repair):
        topo = ParallelNetwork(NUM_TORS, PORTS)
        plan, _ = random_failure_plan(
            NUM_TORS,
            PORTS,
            ratio,
            40_000.0,
            300_000.0 if repair else None,
            random.Random(seed + 7),
        )
        s = NegotiaToRSimulator(
            _config(seed, "scalar"),
            topo,
            _flows(pairs),
            failure_plan=FailurePlan(list(plan.events)),
        )
        v = VectorizedNegotiaToRSimulator(
            _config(seed, "vectorized"),
            topo,
            _flows(pairs),
            failure_plan=FailurePlan(list(plan.events)),
        )
        # Unrepaired failures can strand bytes; cap instead of completing.
        s.run(2e6)
        v.run(2e6)
        _assert_summaries_identical(s, v, stream=False)

    @given(pairs=flow_tuples, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_streaming_bit_identical(self, pairs, seed):
        topo = ParallelNetwork(NUM_TORS, PORTS)
        s = NegotiaToRSimulator(
            _config(seed, "scalar"), topo, iter(_flows(pairs)), stream=True
        )
        v = VectorizedNegotiaToRSimulator(
            _config(seed, "vectorized"), topo, iter(_flows(pairs)), stream=True
        )
        assert s.run_until_complete(max_ns=1e12)
        assert v.run_until_complete(max_ns=1e12)
        _assert_summaries_identical(s, v, stream=True)

    def test_tracer_window_counters_sum_identically(self):
        from repro.telemetry import EngineTracer, MemorySink

        rng = random.Random(11)
        pairs = [
            (
                rng.randrange(NUM_TORS),
                rng.randrange(NUM_TORS - 1),
                rng.randrange(1, 40_000),
                rng.randrange(0, 20_000),
            )
            for _ in range(50)
        ]
        topo = ParallelNetwork(NUM_TORS, PORTS)
        totals = {}
        for core, cls in (
            ("scalar", NegotiaToRSimulator),
            ("vectorized", VectorizedNegotiaToRSimulator),
        ):
            sink = MemorySink()
            tracer = EngineTracer(sink, "negotiator", cadence_ns=25_000)
            sim = cls(_config(3, core), topo, _flows(pairs), tracer=tracer)
            assert sim.run_until_complete(max_ns=1e12)
            tracer.finish(int(sim.now_ns))
            totals[core] = sink.of_kind("run-end")[-1]["counters"]
        assert totals["scalar"] == totals["vectorized"]
        assert totals["scalar"]["epochs"] > 0


class TestObliviousAndRotorCoreParity:
    """The oblivious/rotor engines take ``core`` as an internal switch."""

    @given(pairs=flow_tuples, seed=st.integers(0, 2**16), ff=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_oblivious_cores_bit_identical(self, pairs, seed, ff):
        topo = ThinClos(NUM_TORS, PORTS, NUM_TORS // PORTS)
        sims = {}
        for core in ("scalar", "vectorized"):
            sim = ObliviousSimulator(
                _config(seed, core, fast_forward=ff), topo, _flows(pairs)
            )
            assert sim.run_until_complete(max_ns=1e12)
            sims[core] = sim
        s, v = sims["scalar"], sims["vectorized"]
        assert s.summary().to_dict() == v.summary().to_dict()
        assert {f.fid: f.completed_ns for f in s.tracker.flows} == {
            f.fid: f.completed_ns for f in v.tracker.flows
        }

    @given(
        pairs=flow_tuples,
        seed=st.integers(0, 2**16),
        ff=st.booleans(),
        failures=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_rotor_cores_bit_identical(self, pairs, seed, ff, failures):
        topo = ThinClos(NUM_TORS, PORTS, NUM_TORS // PORTS)
        plan = None
        if failures:
            plan, _ = random_failure_plan(
                NUM_TORS, PORTS, 0.1, 40_000.0, 300_000.0, random.Random(seed)
            )
        sims = {}
        for core in ("scalar", "vectorized"):
            sim = RotorSimulator(
                _config(seed, core, fast_forward=ff),
                topo,
                _flows(pairs),
                failure_plan=(
                    FailurePlan(list(plan.events)) if plan else None
                ),
            )
            sim.run(3e6)
            sims[core] = sim
        s, v = sims["scalar"], sims["vectorized"]
        assert s.summary().to_dict() == v.summary().to_dict()
        assert s.slices == v.slices


class TestFactoryDispatch:
    def test_vectorized_core_selected_inside_envelope(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORE", raising=False)
        config = _config(0, "vectorized")
        topo = ParallelNetwork(NUM_TORS, PORTS)
        sim = make_negotiator(config, topo, [Flow(0, 0, 1, 100, 0.0)])
        assert isinstance(sim, VectorizedNegotiaToRSimulator)

    def test_scalar_core_selected_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORE", raising=False)
        config = _config(0, "scalar")
        topo = ParallelNetwork(NUM_TORS, PORTS)
        sim = make_negotiator(config, topo, [Flow(0, 0, 1, 100, 0.0)])
        assert isinstance(sim, NegotiaToRSimulator)

    def test_env_override_beats_config_field(self, monkeypatch):
        """REPRO_CORE switches a whole sweep without touching specs."""
        monkeypatch.setenv("REPRO_CORE", "vectorized")
        config = _config(0, "scalar")
        topo = ParallelNetwork(NUM_TORS, PORTS)
        sim = make_negotiator(config, topo, [Flow(0, 0, 1, 100, 0.0)])
        assert isinstance(sim, VectorizedNegotiaToRSimulator)

    def test_fallback_outside_envelope_warns_loudly(self):
        """Explicitly requested vectorized on an ineligible config must not
        silently run the scalar engine: a RuntimeWarning names the failed
        envelope condition, and the fallback itself still happens."""
        topo = ParallelNetwork(NUM_TORS, PORTS)
        config = _config(0, "vectorized")
        buffered = replace(config, receiver_buffer_bytes=10_000)
        assert not vectorized_core_eligible(buffered, topo)
        with pytest.warns(RuntimeWarning, match="receiver buffers"):
            sim = make_negotiator(buffered, topo, [Flow(0, 0, 1, 100, 0.0)])
        assert isinstance(sim, NegotiaToRSimulator)
        assert sim.core_used == "scalar"
        assert not vectorized_core_eligible(
            config, ThinClos(NUM_TORS, PORTS, NUM_TORS // PORTS)
        )
        assert not vectorized_core_eligible(
            config, topo, record_pair_bandwidth=True
        )

    def test_fallback_warning_names_first_failed_condition(self):
        from repro.sim.factory import vectorized_core_ineligibility

        config = _config(0, "vectorized")
        thin = ThinClos(NUM_TORS, PORTS, NUM_TORS // PORTS)
        with pytest.warns(RuntimeWarning, match="not the parallel network"):
            make_negotiator(config, thin, [Flow(0, 0, 1, 100, 0.0)])
        assert vectorized_core_ineligibility(config, thin) is not None
        assert (
            vectorized_core_ineligibility(
                config, ParallelNetwork(NUM_TORS, PORTS)
            )
            is None
        )

    def test_default_scalar_path_stays_silent(self, recwarn, monkeypatch):
        """The implicit default (core='scalar') is not a fallback; no
        warning may fire even on a config outside the vectorized envelope."""
        monkeypatch.delenv("REPRO_CORE", raising=False)
        config = replace(_config(0, "scalar"), receiver_buffer_bytes=10_000)
        topo = ParallelNetwork(NUM_TORS, PORTS)
        sim = make_negotiator(config, topo, [Flow(0, 0, 1, 100, 0.0)])
        assert isinstance(sim, NegotiaToRSimulator)
        assert not [
            w for w in recwarn.list if issubclass(w.category, RuntimeWarning)
        ]

    def test_eligible_vectorized_path_stays_silent(self, recwarn, monkeypatch):
        monkeypatch.delenv("REPRO_CORE", raising=False)
        config = _config(0, "vectorized")
        topo = ParallelNetwork(NUM_TORS, PORTS)
        sim = make_negotiator(config, topo, [Flow(0, 0, 1, 100, 0.0)])
        assert isinstance(sim, VectorizedNegotiaToRSimulator)
        assert sim.core_used == "vectorized"
        assert not [
            w for w in recwarn.list if issubclass(w.category, RuntimeWarning)
        ]


class TestRunLoopControl:
    """Satellites: integer-ns loop control and max_ns validation."""

    def _engines(self, core="scalar"):
        config = _config(0, core)
        flows = [Flow(0, 0, 1, 5_000, 0.0)]
        thin = ThinClos(NUM_TORS, PORTS, NUM_TORS // PORTS)
        return [
            NegotiaToRSimulator(
                config, ParallelNetwork(NUM_TORS, PORTS), list(flows)
            ),
            ObliviousSimulator(config, thin, list(flows)),
            RotorSimulator(config, thin, list(flows)),
        ]

    @pytest.mark.parametrize("bad", [0, -1, -1e9])
    def test_run_until_complete_rejects_nonpositive_max_ns(self, bad):
        for sim in self._engines():
            with pytest.raises(ValueError, match="max_ns must be positive"):
                sim.run_until_complete(max_ns=bad)
        config = _config(0, "vectorized")
        vec = VectorizedNegotiaToRSimulator(
            config, ParallelNetwork(NUM_TORS, PORTS), [Flow(0, 0, 1, 10, 0.0)]
        )
        with pytest.raises(ValueError, match="max_ns must be positive"):
            vec.run_until_complete(max_ns=bad)

    def test_long_horizon_epoch_counts_are_exact(self):
        """Integer step budgets: epoch counters match ceil(duration/step)
        exactly even over horizons where float accumulation would drift."""
        config = _config(0, "scalar", fast_forward=False)
        topo = ParallelNetwork(NUM_TORS, PORTS)
        sim = NegotiaToRSimulator(config, topo, [])
        epoch_ns = sim.timing.epoch_ns
        duration = 250_000 * epoch_ns  # long horizon, inexact float step
        sim.run(duration)
        assert sim.epoch == math.ceil(duration / epoch_ns) or (
            sim.epoch * epoch_ns >= duration
            and (sim.epoch - 1) * epoch_ns < duration
        )
        # The defining invariant: stepping stopped exactly at the first
        # epoch whose start time reaches the requested duration.
        assert (sim.epoch - 1) * epoch_ns < duration <= sim.epoch * epoch_ns

    def test_chunked_run_equals_single_run(self):
        """Repeated short run() calls land on the same integer epoch count
        as one long call — no drift from re-deriving the loop bound."""
        config = _config(0, "scalar", fast_forward=False)
        topo = ParallelNetwork(NUM_TORS, PORTS)
        single = NegotiaToRSimulator(config, topo, [])
        chunked = NegotiaToRSimulator(config, topo, [])
        epoch_ns = single.timing.epoch_ns
        total = 999 * epoch_ns * 1.000000001
        single.run(total)
        for i in range(1, 10):
            chunked.run(total * i / 9)
        assert chunked.epoch == single.epoch
