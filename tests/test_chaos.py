"""Chaos-injection tests: the fault-tolerance acceptance suite.

The headline contract (DESIGN.md §13): a sweep bombarded with injected
crashes, hangs, and failures completes every healthy spec, quarantines the
poisoned ones with tracebacks, and — after the faults clear — a resumed
run converges to a store whose canonical content digest is identical to an
undisturbed serial run's.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.sweep import (
    ChaosError,
    ChaosPlan,
    Fault,
    ResultStore,
    RetryPolicy,
    RunSpec,
    SweepRunner,
    execute_spec,
)
from repro.sweep.chaos import (
    CHAOS_ENV,
    DEFAULT_EXIT_CODE,
    DEFAULT_HANG_S,
    active_plan,
    maybe_inject,
)

SHORT_NS = 150_000.0

FAST_RETRY = RetryPolicy(max_attempts=2, backoff_base_s=0.01)


def acceptance_grid() -> list[RunSpec]:
    """32 cheap specs spanning scenarios, loads, and seeds."""
    return [
        RunSpec(
            scale="tiny",
            scenario=scenario,
            load=load,
            seed=seed,
            duration_ns=SHORT_NS,
        )
        for scenario in ("poisson", "hotspot", "permutation", "bursty")
        for load in (0.1, 0.25)
        for seed in (2024, 7, 99, 13)
    ]


def set_chaos(monkeypatch, *faults: Fault) -> None:
    monkeypatch.setenv(CHAOS_ENV, ChaosPlan.from_faults(faults).to_json())


# ---------------------------------------------------------------------------
# the plan itself
# ---------------------------------------------------------------------------


class TestChaosPlan:
    def test_json_roundtrip(self):
        plan = ChaosPlan.from_faults(
            [
                Fault(match="3fa9c1", kind="raise"),
                Fault(match="77b2", kind="exit", attempts=(1, 3)),
                Fault(match="c0ffee", kind="hang", hang_s=30.0),
                Fault(match="dead", kind="exit", exit_code=9),
            ]
        )
        assert ChaosPlan.from_json(plan.to_json()) == plan
        # Defaults are elided from the wire format.
        payload = json.loads(plan.to_json())
        assert "hang_s" not in payload["faults"][0]
        assert payload["faults"][2]["hang_s"] == 30.0
        assert payload["faults"][3]["exit_code"] == 9

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            ChaosPlan.from_json("{nope")
        with pytest.raises(ValueError, match="faults"):
            ChaosPlan.from_json('{"other": 1}')
        with pytest.raises(ValueError, match="unknown chaos fault key"):
            ChaosPlan.from_json(
                '{"faults": [{"match": "ab", "kind": "raise", "oops": 1}]}'
            )
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(match="ab", kind="explode")
        with pytest.raises(ValueError, match="non-empty"):
            Fault(match="", kind="raise")

    def test_fault_gating_by_prefix_and_attempt(self):
        fault = Fault(match="abc", kind="raise", attempts=(2,))
        assert not fault.applies("abcdef", 1)
        assert fault.applies("abcdef", 2)
        assert not fault.applies("xabcdef", 2)
        every = Fault(match="abc", kind="raise")
        assert every.applies("abcdef", 1)
        assert every.applies("abcdef", 99)

    def test_fault_for_first_match_wins(self):
        plan = ChaosPlan.from_faults(
            [
                Fault(match="ab", kind="raise"),
                Fault(match="abc", kind="hang"),
            ]
        )
        assert plan.fault_for("abcd", 1).kind == "raise"
        assert plan.fault_for("zzz", 1) is None

    def test_inject_raise(self):
        plan = ChaosPlan.from_faults([Fault(match="ab", kind="raise")])
        with pytest.raises(ChaosError, match="chaos"):
            plan.inject("abcd", 1)
        plan.inject("zzz", 1)  # no matching fault: no-op

    def test_maybe_inject_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        maybe_inject("a" * 64, 1)  # must not raise

    def test_active_plan_tracks_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert active_plan().faults == ()
        set_chaos(monkeypatch, Fault(match="ab", kind="raise"))
        assert len(active_plan().faults) == 1
        set_chaos(monkeypatch, Fault(match="cd", kind="hang"))
        assert active_plan().faults[0].match == "cd"

    def test_defaults_are_sane(self):
        # The default hang outlives any plausible per-spec timeout, and
        # the default exit code is distinctive in worker-death reports.
        assert DEFAULT_HANG_S >= 600
        assert DEFAULT_EXIT_CODE not in (0, 1, 2)


# ---------------------------------------------------------------------------
# the acceptance run: 32 specs, crashes + hangs + raises, converge on resume
# ---------------------------------------------------------------------------


class TestChaosConvergence:
    def test_poisoned_sweep_quarantines_and_resume_converges(
        self, monkeypatch, tmp_path
    ):
        specs = acceptance_grid()
        assert len(specs) == 32

        # The undisturbed reference: serial, no chaos.
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        serial_store = ResultStore(tmp_path / "serial.jsonl")
        serial = SweepRunner(jobs=1, store=serial_store).run(specs)

        # Poison four specs: one permanent raise, one permanent crash,
        # one permanent hang, one transient raise (first attempt only).
        raise_spec, exit_spec, hang_spec, flaky_spec = (
            specs[0], specs[5], specs[10], specs[15],
        )
        set_chaos(
            monkeypatch,
            Fault(match=raise_spec.content_hash, kind="raise"),
            Fault(match=exit_spec.content_hash, kind="exit"),
            Fault(match=hang_spec.content_hash, kind="hang"),
            Fault(match=flaky_spec.content_hash, kind="raise", attempts=(1,)),
        )
        chaos_store = ResultStore(tmp_path / "chaos.jsonl")
        runner = SweepRunner(
            jobs=2,
            store=chaos_store,
            timeout_s=1.5,
            retry=FAST_RETRY,
            on_error="quarantine",
        )
        results = runner.run(specs)

        # Healthy specs (and the flaky one, on retry) all completed.
        poisoned = {
            raise_spec.content_hash,
            exit_spec.content_hash,
            hang_spec.content_hash,
        }
        assert len(results) == 29
        assert set(results) == {s.content_hash for s in specs} - poisoned
        assert runner.outcomes[flaky_spec.content_hash].attempt_statuses == (
            "failed", "ok",
        )

        # The poisoned specs are quarantined with diagnosable outcomes.
        assert runner.quarantine.hashes() == poisoned
        by_hash = {row["spec_hash"]: row for row in runner.quarantine.rows()}
        assert by_hash[raise_spec.content_hash]["status"] == "failed"
        assert "ChaosError" in by_hash[raise_spec.content_hash]["traceback"]
        assert by_hash[exit_spec.content_hash]["status"] == "crashed"
        assert "exit code 77" in by_hash[exit_spec.content_hash]["error"]
        assert by_hash[hang_spec.content_hash]["status"] == "timed-out"
        for row in by_hash.values():
            assert row["attempts"] == FAST_RETRY.max_attempts
            assert RunSpec.from_dict(row["spec"]).content_hash == (
                row["spec_hash"]
            )

        # Faults clear (deploy fixed, machine rebooted): resume executes
        # exactly the quarantined specs and nothing else.
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        resumer = SweepRunner(jobs=1, store=chaos_store, resume=True)
        resumed = resumer.run(specs)
        assert resumer.executed == 3
        assert resumer.cached == 29
        assert set(resumed) == {s.content_hash for s in specs}

        # Convergence: every summary bit-identical to the serial run, and
        # the compacted stores digest identically.
        for spec in specs:
            assert (
                resumed[spec.content_hash].to_dict()
                == serial[spec.content_hash].to_dict()
            )
        serial_store.compact()
        chaos_store.compact()
        assert serial_store.content_digest() == chaos_store.content_digest()
        assert serial_store.verify().ok
        assert chaos_store.verify().ok


# ---------------------------------------------------------------------------
# SIGINT mid-sweep: interrupt, resume, match the golden bit-for-bit
# ---------------------------------------------------------------------------


def cli_env(**extra: str) -> dict:
    src = str(Path(__file__).resolve().parent.parent / "src")
    env = {"PYTHONPATH": src, "PATH": "/usr/bin:/bin", **extra}
    # The subprocess must run the same engine core as this process: stored
    # summaries record core_used, and the bit-for-bit comparison against an
    # in-process golden would otherwise diverge on that key alone.
    if "REPRO_CORE" in os.environ:
        env["REPRO_CORE"] = os.environ["REPRO_CORE"]
    return env


SWEEP_ARGS = (
    "sweep",
    "--scale", "tiny",
    "--scenario", "poisson",
    "--scenario", "hotspot",
    "--load", "0.1",
    "--load", "0.25",
    "--duration-ms", "0.15",
    "--jobs", "1",
)


class TestSigintResume:
    def test_interrupt_then_resume_executes_only_missing(self, tmp_path):
        store_path = tmp_path / "sweep.jsonl"

        # Harvest the grid's execution order from a dry run.
        dry = subprocess.run(
            [sys.executable, "-m", "repro", *SWEEP_ARGS, "--dry-run"],
            capture_output=True, text=True, env=cli_env(),
        )
        assert dry.returncode == 0, dry.stderr
        hashes = [
            line.split()[0]
            for line in dry.stdout.splitlines()
            if line
            and len(line.split()[0]) == 12
            and set(line.split()[0]) <= set("0123456789abcdef")
        ]
        assert len(hashes) == 4

        # Hang the last spec: the sweep completes three runs, then stalls
        # mid-grid — the window where an operator hits Ctrl-C.
        plan = ChaosPlan.from_faults(
            [Fault(match=hashes[-1], kind="hang")]
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", *SWEEP_ARGS,
                "--store", str(store_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=cli_env(**{CHAOS_ENV: plan.to_json()}),
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if (
                    store_path.exists()
                    and len(store_path.read_bytes().splitlines()) >= 3
                ):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("sweep never completed its first three specs")
            proc.send_signal(signal.SIGINT)
            _, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "interrupted" in stderr
        assert "--resume" in stderr

        # The interrupted store holds exactly the three completed runs,
        # every row intact.
        store = ResultStore(store_path)
        report = store.verify()
        assert report.ok
        assert report.unique_hashes == 3

        # Resume without chaos: only the missing spec executes.
        resume = subprocess.run(
            [
                sys.executable, "-m", "repro", *SWEEP_ARGS,
                "--store", str(store_path), "--resume",
            ],
            capture_output=True, text=True, env=cli_env(),
        )
        assert resume.returncode == 0, resume.stderr
        assert "1 executed, 3 cached" in resume.stdout

        # Bit-for-bit against the serial golden, computed in-process.
        stored = store.load()
        specs = store.load_specs()
        assert len(stored) == 4
        assert {spec.short_hash for spec in specs.values()} == set(hashes)
        for spec_hash, spec in specs.items():
            golden = execute_spec(spec)
            assert stored[spec_hash].to_dict() == golden.to_dict()
