"""End-to-end fault tolerance tests (section 3.6.1, Fig 10 / Fig 19)."""

import random

import pytest

from repro import (
    BandwidthRecorder,
    Direction,
    FailurePlan,
    LinkFailureModel,
    LinkRef,
    NegotiaToRSimulator,
    ParallelNetwork,
    SimConfig,
    all_to_all_workload,
    random_failure_plan,
    single_pair_stream,
)

N, S = 16, 4
EPOCH_NS = 4 * 60 + 30 * 90  # 16x4 parallel: ceil(15/4) = 4 predefined slots


def config(**overrides):
    defaults = dict(
        num_tors=N, ports_per_tor=S, uplink_gbps=100.0,
        host_aggregate_gbps=S * 100.0 / 2.0,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


def make_sim(flows, plan=None, detect_epochs=3, **kwargs):
    cfg = config()
    model = LinkFailureModel(N, S, detect_epochs=detect_epochs)
    return NegotiaToRSimulator(
        cfg, ParallelNetwork(N, S), flows,
        failure_model=model, failure_plan=plan, **kwargs
    )


class TestMessageLoss:
    def test_failed_link_suspends_some_epochs(self):
        """Fig 19: scheduling-message loss zeroes whole epochs, but the
        rotating round-robin rule lets the pair use other links."""
        stream = single_pair_stream(0, 1, total_bytes=50_000_000)
        plan = FailurePlan()
        plan.add_failure(0.0, LinkRef(0, 0, Direction.EGRESS))
        recorder = BandwidthRecorder(bin_ns=EPOCH_NS)
        # Detection lag is huge so the run shows pre-detection behaviour.
        sim = make_sim(
            stream, plan=plan, detect_epochs=10_000,
            bandwidth_recorder=recorder, record_pair_bandwidth=True,
        )
        sim.run(150 * EPOCH_NS)
        _, gbps = recorder.series_gbps(("pair", 0, 1), until_ns=150 * EPOCH_NS)
        active = [v > 0 for v in gbps[5:]]
        # Transmission proceeds in most epochs but is suspended in some
        # (whenever the pair's control messages ride the broken port).
        assert any(active)
        assert not all(active)

    def test_healthy_run_has_no_suspended_epochs(self):
        stream = single_pair_stream(0, 1, total_bytes=50_000_000)
        recorder = BandwidthRecorder(bin_ns=EPOCH_NS)
        sim = make_sim(
            stream, bandwidth_recorder=recorder, record_pair_bandwidth=True
        )
        sim.run(100 * EPOCH_NS)
        _, gbps = recorder.series_gbps(("pair", 0, 1))
        assert all(v > 0 for v in gbps[5:])


class TestDetectionAndExclusion:
    def test_detected_ports_are_excluded_from_matching(self):
        """After detection, no match uses the dead egress port."""
        stream = single_pair_stream(0, 1, total_bytes=50_000_000)
        plan = FailurePlan()
        plan.add_failure(0.0, LinkRef(0, 2, Direction.EGRESS))
        sim = make_sim(stream, plan=plan, detect_epochs=2)
        for _ in range(10):
            sim.step_epoch()
        matches = sim.step_epoch()
        assert all(
            not (m.src == 0 and m.port == 2) for m in matches
        )

    def test_repaired_port_rejoins_matching(self):
        stream = single_pair_stream(0, 1, total_bytes=200_000_000)
        plan = FailurePlan()
        plan.add_failure(0.0, LinkRef(0, 2, Direction.EGRESS))
        plan.add_repair(30 * EPOCH_NS, LinkRef(0, 2, Direction.EGRESS))
        sim = make_sim(stream, plan=plan, detect_epochs=2)
        used_after_repair = False
        for epoch in range(80):
            matches = sim.step_epoch()
            if epoch > 40 and any(m.src == 0 and m.port == 2 for m in matches):
                used_after_repair = True
        assert used_after_repair


class TestBandwidthUnderFailures:
    @pytest.mark.parametrize("ratio", [0.05, 0.2])
    def test_failures_reduce_bandwidth_then_recovery_restores(self, ratio):
        """Fig 10's protocol in miniature: fail a fraction of links mid-run,
        repair them, compare windowed delivered bytes."""
        duration = 360 * EPOCH_NS
        fail_at = 120 * EPOCH_NS
        repair_at = 240 * EPOCH_NS
        # A saturating all-to-all backlog pins the delivered rate at fabric
        # capacity from the first epochs, so the windows are stationary and
        # the failure dip is not masked by ramp-up.
        flows = all_to_all_workload(N, flow_bytes=10_000_000)
        plan, failed = random_failure_plan(
            N, S, ratio, fail_at, repair_at, random.Random(4)
        )
        recorder = BandwidthRecorder(bin_ns=EPOCH_NS)
        sim = make_sim(flows, plan=plan, detect_epochs=3,
                       bandwidth_recorder=recorder)
        sim.run(duration)

        def window(start, end):
            return sum(
                recorder.window_bytes(("rx", dst), start, end)
                for dst in range(N)
            )

        margin = 20 * EPOCH_NS
        pre = window(margin, fail_at)
        during = window(fail_at + margin, repair_at)
        post = window(repair_at + margin, duration - margin)
        assert during < pre
        # Recovery restores most of the pre-failure bandwidth.
        pre_rate = pre / (fail_at - margin)
        post_rate = post / (duration - margin - (repair_at + margin))
        assert post_rate > 0.85 * pre_rate

    def test_zero_failures_leave_bandwidth_flat(self):
        duration = 200 * EPOCH_NS
        flows = all_to_all_workload(N, flow_bytes=10_000_000)
        recorder = BandwidthRecorder(bin_ns=EPOCH_NS)
        sim = make_sim(flows, bandwidth_recorder=recorder)
        sim.run(duration)

        def window(start, end):
            return sum(
                recorder.window_bytes(("rx", dst), start, end)
                for dst in range(N)
            )

        first = window(40 * EPOCH_NS, 120 * EPOCH_NS)
        second = window(120 * EPOCH_NS, 200 * EPOCH_NS)
        assert second == pytest.approx(first, rel=0.15)
