"""Tests for the traffic-oblivious rotor + VLB baseline (section 2 / 4.1)."""

import random

import pytest

from repro import (
    BandwidthRecorder,
    Flow,
    ObliviousSimulator,
    ParallelNetwork,
    SimConfig,
    ThinClos,
    poisson_workload,
)
from repro.workloads.traces import hadoop

SLOT_NS = 10.0 + 90.0  # guard + tx(1125 B at 100 Gbps)


def tiny_config(**overrides):
    defaults = dict(
        num_tors=8, ports_per_tor=2, uplink_gbps=100.0, host_aggregate_gbps=100.0
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


def make_sim(flows, config=None, **kwargs):
    config = config or tiny_config()
    return ObliviousSimulator(
        config, ThinClos(config.num_tors, config.ports_per_tor, 4), flows, **kwargs
    )


def flow(fid=0, src=0, dst=1, size=500, arrival=0.0):
    return Flow(fid=fid, src=src, dst=dst, size_bytes=size, arrival_ns=arrival)


class TestConstruction:
    def test_slot_duration(self):
        sim = make_sim([])
        assert sim.slot_ns == pytest.approx(SLOT_NS)
        assert sim.cycle_slots == 4  # thin-clos W = 4

    def test_topology_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ObliviousSimulator(tiny_config(), ThinClos(16, 4, 4), [])

    def test_works_on_parallel_topology_too(self):
        config = tiny_config()
        sim = ObliviousSimulator(config, ParallelNetwork(8, 2), [flow()])
        sim.run_until_complete(max_ns=100_000)
        assert sim.tracker.all_complete


class TestVLBSemantics:
    def test_single_cell_is_delivered(self):
        sim = make_sim([flow(size=500)])
        assert sim.run_until_complete(max_ns=100_000)

    def test_relayed_cell_takes_two_hops(self):
        """A cell spread to a non-destination peer pays two slots + props.

        Deterministic schedule at 8x2 thin-clos: ToR 0's first usable slot
        sends the head cell to ToR 4 (port 1, slot 0) — a relay — which
        forwards to ToR 1 when its rotor reaches it.
        """
        config = tiny_config(propagation_ns=2000.0)
        sim = make_sim([flow(size=500)], config=config)
        sim.run_until_complete(max_ns=1_000_000)
        f = sim.tracker.flows[0]
        assert f.fct_ns >= 2 * SLOT_NS + 2 * 2000.0 - 1e-6

    def test_intermediate_equal_to_destination_is_one_hop(self):
        """On a 2-ToR fabric the only possible intermediate IS the
        destination, so every cell is delivered in one hop."""
        config = SimConfig(
            num_tors=2, ports_per_tor=1, uplink_gbps=100.0,
            host_aggregate_gbps=50.0, propagation_ns=2000.0,
        )
        f = flow(size=500)
        sim = ObliviousSimulator(config, ThinClos(2, 1, 2), [f])
        sim.run_until_complete(max_ns=100_000)
        # One slot end + one propagation: strictly below any 2-hop time.
        assert f.fct_ns < 2 * SLOT_NS + 2 * 2000.0

    def test_relay_bytes_counted_once(self):
        """Goodput counts first-copy bytes only, even when relayed."""
        sim = make_sim([flow(size=5000)])
        sim.run_until_complete(max_ns=1_000_000)
        assert sim.tracker.delivered_bytes == 5000

    def test_relay_queue_drains(self):
        sim = make_sim([flow(size=5000)])
        sim.run_until_complete(max_ns=1_000_000)
        assert all(sim.relay_bytes_at(t) == 0 for t in range(8))

    def test_relay_traffic_recorded_separately(self):
        recorder = BandwidthRecorder(bin_ns=1000.0)
        sim = make_sim([flow(size=5000)], bandwidth_recorder=recorder)
        sim.run_until_complete(max_ns=1_000_000)
        relayed = sum(
            recorder.total_bytes(key) for key in recorder.keys()
            if key[0] == "relay"
        )
        received = recorder.total_bytes(("rx", 1))
        assert received == 5000
        # 5000 B = 5 cells; the deterministic 8x2 rotor delivers exactly one
        # of them directly (slot 1, port 0 connects 0 -> 1), so 3885 B relay.
        assert relayed == 5000 - 1115


class TestConservation:
    def test_bytes_conserved_under_load(self):
        config = tiny_config()
        flows = poisson_workload(
            hadoop(), 0.9, 8, config.host_aggregate_gbps, 150_000,
            random.Random(3),
        )
        sim = make_sim(flows, config=config)
        sim.run(150_000)
        injected = sum(f.size_bytes for f in flows)
        left = sum(f.remaining_bytes for f in flows)
        assert sim.tracker.delivered_bytes + left == injected
        assert sim.total_queued_bytes == left

    def test_no_delivery_before_arrival(self):
        config = tiny_config()
        flows = poisson_workload(
            hadoop(), 0.4, 8, config.host_aggregate_gbps, 80_000,
            random.Random(4),
        )
        sim = make_sim(flows, config=config)
        sim.run_until_complete(max_ns=20_000_000)
        for f in flows:
            assert f.completed_ns >= f.arrival_ns + config.propagation_ns


class TestRelayPriority:
    def test_relay_cell_preempts_staged_cell_on_shared_slot(self):
        """White-box: when one slot could carry either a relay cell or a
        fresh staged cell toward the same peer, the relay cell wins."""
        sim = make_sim([])
        # ToR 0's port 1 connects to ToR 4 in slot 0 (thin-clos schedule).
        peer = sim.topology.predefined_peer(0, 1, 0)
        assert peer == 4
        relay_flow = flow(fid=0, src=7, dst=4, size=1115)
        staged_flow = flow(fid=1, src=0, dst=4, size=1115)
        sim.tracker.register(relay_flow)
        sim.tracker.register(staged_flow)
        # Place one relay cell (7 -> 4 transiting 0) and one staged cell.
        from repro.sim.queues import PiasDestQueue

        rq = PiasDestQueue((), enabled=False)
        rq.enqueue_bytes(relay_flow, 1115, band=0, eligible_ns=0.0)
        sim._relay[0][4] = rq
        sim._relay_pending[0] += 1115
        sim._stage_bytes(0, 4, staged_flow, 1115, band=0)
        sim._stage_pending[0] += 1115
        sim.step_slot()
        assert relay_flow.completed
        assert not staged_flow.completed

    def test_relayed_elephants_block_fresh_cells_on_shared_ports(self):
        """The paper's pain point: relayed elephant traffic transiting a ToR
        has priority on its ports and delays that ToR's own fresh cells."""
        victim = flow(fid=0, src=2, dst=1, size=50_000, arrival=0.0)
        sim = make_sim([victim])
        sim.run_until_complete(max_ns=10_000_000)
        alone_fct = victim.fct_ns

        victim = flow(fid=0, src=2, dst=1, size=50_000, arrival=0.0)
        elephant = flow(fid=1, src=0, dst=3, size=500_000, arrival=0.0)
        sim = make_sim([victim, elephant])
        sim.run_until_complete(max_ns=30_000_000)
        assert victim.fct_ns > alone_fct


class TestRunLoops:
    def test_run_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            make_sim([]).run(0)

    def test_run_until_complete_times_out(self):
        sim = make_sim([flow(size=100_000_000)])
        assert not sim.run_until_complete(max_ns=10 * SLOT_NS)

    def test_summary_has_no_epoch(self):
        sim = make_sim([flow(size=500)])
        sim.run_until_complete(max_ns=100_000)
        summary = sim.summary()
        assert summary.epoch_ns is None
        assert summary.mice_fct_p99_epochs is None
        assert summary.num_completed == 1
