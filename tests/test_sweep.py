"""Tests for the sweep orchestration subsystem (spec, runner, store, CLI).

The load-bearing properties:

* spec content hashes are stable — across objects, param orderings, JSON
  round-trips, and separate processes;
* a parallel sweep (``jobs=4``) is bit-identical to a serial one;
* a resumed sweep serves every completed spec from the store and executes
  zero simulations.
"""

from __future__ import annotations

import json
import multiprocessing
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import TINY
from repro.sim.config import SimConfig
from repro.sim.metrics import RunSummary
from repro.sweep import (
    SCENARIOS,
    ResultStore,
    RunSpec,
    StoreError,
    SweepRunner,
    build_workload,
    execute_spec,
    freeze_params,
)

SHORT_NS = 150_000.0


def tiny_spec(**overrides) -> RunSpec:
    base = dict(
        scale="tiny", load=0.25, seed=2024, duration_ns=SHORT_NS
    )
    base.update(overrides)
    return RunSpec(**base)


def grid_specs() -> list[RunSpec]:
    """8 cheap specs spanning scenarios, loads, and systems."""
    specs = [
        tiny_spec(scenario=scenario, load=load)
        for scenario in ("poisson", "hotspot", "permutation")
        for load in (0.1, 0.25)
    ]
    specs.append(tiny_spec(system="oblivious", topology="thinclos"))
    specs.append(tiny_spec(scenario="ring-allreduce", load=1.0))
    return specs


# ---------------------------------------------------------------------------
# spec hashing
# ---------------------------------------------------------------------------


def _hash_in_subprocess(spec_dict: dict) -> str:
    return RunSpec.from_dict(spec_dict).content_hash


class TestSpecHash:
    def test_equal_specs_hash_equal(self):
        assert tiny_spec().content_hash == tiny_spec().content_hash

    def test_any_field_change_changes_hash(self):
        base = tiny_spec()
        variants = [
            tiny_spec(load=0.5),
            tiny_spec(seed=7),
            tiny_spec(topology="thinclos"),
            tiny_spec(priority_queue=False),
            tiny_spec(scenario="hotspot"),
            tiny_spec(scenario_params={"trace": "websearch"}),
            tiny_spec(collect=("mice_cdf",)),
            tiny_spec(epoch_params={"scheduled_slots": 10}),
            tiny_spec(
                failure_params={
                    "plan": "egress-ports", "ports": 1, "at_ns": 0.0,
                }
            ),
            tiny_spec(instrument={"match_ratio": True}),
            tiny_spec(system="relay", topology="thinclos"),
            tiny_spec(system="rotor", topology="thinclos"),
            tiny_spec(
                system="rotor",
                topology="thinclos",
                rotor_params={"packets_per_slice": 4},
            ),
            tiny_spec(system="adaptive", topology="thinclos"),
            tiny_spec(
                system="adaptive",
                topology="thinclos",
                adaptive_params={"recompute_slices": 2},
            ),
        ]
        hashes = {spec.content_hash for spec in variants}
        assert len(hashes) == len(variants)
        assert base.content_hash not in hashes

    def test_param_order_does_not_matter(self):
        a = tiny_spec(scenario_params={"a": 1, "b": 2})
        b = tiny_spec(scenario_params={"b": 2, "a": 1})
        assert a.content_hash == b.content_hash

    def test_dict_roundtrip_preserves_hash(self):
        spec = tiny_spec(
            scenario="incast",
            scenario_params={"degree": 3},
            collect=("incast_finish_ns",),
            until_complete=True,
        )
        recycled = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert recycled == spec
        assert recycled.content_hash == spec.content_hash

    def test_hash_stable_across_processes(self):
        """The store contract: other processes compute the same hashes."""
        specs = grid_specs()
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(2) as pool:
            remote = pool.map(
                _hash_in_subprocess, [s.to_dict() for s in specs]
            )
        assert remote == [s.content_hash for s in specs]

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="system"):
            tiny_spec(system="torus")

    def test_spec_version_is_the_minimum_able_to_express(self):
        """Schema growth (v3 rotor, v5 adaptive) is hash-neutral for
        legacy specs.

        A spec hashes under the oldest schema that can express it, so the
        v3 bump (rotor system + rotor_params) and the v5 bump (adaptive
        system + adaptive_params) must leave every legacy spec's canonical
        JSON — and hash — byte-identical.
        """
        legacy = tiny_spec()
        assert legacy.spec_version == 2
        assert '"spec_version":2' in legacy.canonical_json()
        assert '"rotor_params"' not in legacy.canonical_json()
        assert '"adaptive_params"' not in legacy.canonical_json()
        rotor = tiny_spec(system="rotor", topology="thinclos")
        assert rotor.spec_version == 3
        assert '"spec_version":3' in rotor.canonical_json()
        assert '"adaptive_params"' not in rotor.canonical_json()
        adaptive = tiny_spec(system="adaptive", topology="thinclos")
        assert adaptive.spec_version == 5
        assert '"spec_version":5' in adaptive.canonical_json()

    def test_adaptive_spec_roundtrips_and_hashes(self):
        spec = tiny_spec(
            system="adaptive",
            topology="thinclos",
            adaptive_params={"ewma_alpha": 0.5, "residual_ports": 2},
        )
        recycled = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert recycled == spec
        assert recycled.content_hash == spec.content_hash
        assert spec.content_hash != tiny_spec(
            system="adaptive", topology="thinclos"
        ).content_hash

    def test_rotor_spec_roundtrips_and_hashes(self):
        spec = tiny_spec(
            system="rotor",
            topology="thinclos",
            rotor_params={"packets_per_slice": 8, "vlb_relay": False},
        )
        recycled = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert recycled == spec
        assert recycled.content_hash == spec.content_hash
        assert spec.content_hash != tiny_spec(
            system="rotor", topology="thinclos"
        ).content_hash

    def test_unknown_field_rejected_on_from_dict(self):
        with pytest.raises(ValueError, match="unknown RunSpec fields"):
            RunSpec.from_dict({"scale": "tiny", "color": "red"})

    def test_freeze_params_rejects_non_scalars(self):
        with pytest.raises(TypeError, match="scalar"):
            freeze_params({"bad": [1, 2]})

    def test_ad_hoc_scale_embeds_shape_and_executes(self):
        """Unregistered scales travel inside the spec (fixture fabrics)."""
        from repro.experiments.common import ExperimentScale
        from repro.sweep import scale_spec_fields

        micro = ExperimentScale(
            name="micro-x",
            num_tors=8,
            ports_per_tor=2,
            awgr_ports=4,
            duration_ns=80_000.0,
            max_flow_bytes=100_000,
            seed=99,
        )
        fields = scale_spec_fields(micro)
        assert fields["scale_params"]  # not a registered scale
        spec = RunSpec(**fields, load=0.5, seed=99)
        assert execute_spec(spec).num_flows > 0
        # Same name, different fabric -> different hash.
        other = RunSpec(
            **scale_spec_fields(
                ExperimentScale(
                    name="micro-x",
                    num_tors=16,
                    ports_per_tor=4,
                    awgr_ports=4,
                    duration_ns=80_000.0,
                    seed=99,
                )
            ),
            load=0.5,
            seed=99,
        )
        assert other.content_hash != spec.content_hash
        # Registered scales stay name-referenced.
        assert scale_spec_fields(TINY) == {"scale": "tiny"}


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


class TestScenarios:
    def test_registry_covers_paper_and_extended_patterns(self):
        assert {
            "poisson", "incast", "alltoall", "hotspot", "permutation",
            "bursty", "ring-allreduce", "shuffle",
        } <= set(SCENARIOS)

    def test_build_workload_is_deterministic(self):
        spec = tiny_spec(scenario="hotspot")
        a = build_workload(spec, TINY)
        b = build_workload(spec, TINY)
        assert [(f.fid, f.src, f.dst, f.size_bytes, f.arrival_ns) for f in a] \
            == [(f.fid, f.src, f.dst, f.size_bytes, f.arrival_ns) for f in b]

    def test_seed_changes_workload(self):
        a = build_workload(tiny_spec(scenario="permutation"), TINY)
        b = build_workload(tiny_spec(scenario="permutation", seed=1), TINY)
        assert [(f.src, f.dst) for f in a] != [(f.src, f.dst) for f in b]

    def test_unknown_scenario_param_rejected(self):
        spec = tiny_spec(scenario_params={"bogus": 1})
        with pytest.raises(ValueError, match="bogus"):
            build_workload(spec, TINY)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_workload(tiny_spec(scenario="quantum"), TINY)

    def test_ring_allreduce_auto_gap_vs_explicit(self):
        auto = build_workload(
            tiny_spec(scenario="ring-allreduce", load=1.0), TINY
        )
        explicit = build_workload(
            tiny_spec(
                scenario="ring-allreduce",
                load=1.0,
                scenario_params={"phase_gap_ns": 500.0},
            ),
            TINY,
        )
        assert sorted({f.arrival_ns for f in explicit}) != sorted(
            {f.arrival_ns for f in auto}
        )
        # Zero gap is unrepresentable and must say so, not silently
        # fall back to auto pacing.
        with pytest.raises(ValueError, match="phase_gap_ns"):
            build_workload(
                tiny_spec(
                    scenario="ring-allreduce",
                    load=1.0,
                    scenario_params={"phase_gap_ns": 0.0},
                ),
                TINY,
            )


# ---------------------------------------------------------------------------
# execution and collectors
# ---------------------------------------------------------------------------


class TestExecuteSpec:
    def test_matches_reference_runner(self):
        """execute_spec reproduces the experiments' direct-run path.

        The executor adds exactly one thing on top: the ``core_used``
        observability key in ``extra`` (direct runs don't report it)."""
        from repro.experiments.common import run_negotiator, workload_for

        spec = tiny_spec()
        summary = execute_spec(spec).to_dict()
        assert summary["extra"].pop("core_used") == SimConfig().resolved_core
        flows = workload_for(TINY, 0.25, duration_ns=SHORT_NS)
        reference = run_negotiator(
            TINY, "parallel", flows, duration_ns=SHORT_NS
        ).summary
        assert summary == reference.to_dict()

    def test_collectors_fill_extra(self):
        spec = tiny_spec(
            scenario="incast",
            scenario_params={"degree": 3},
            load=1.0,
            seed=7,
            duration_ns=None,
            until_complete=True,
            max_ns=50_000_000.0,
            collect=("incast_finish_ns", "tag_finish_ns"),
        )
        summary = execute_spec(spec)
        assert summary.extra["incast_finish_ns"] > 0
        assert "incast" in summary.extra["tag_finish_ns"]
        # Everything in extra must survive the JSON store.
        assert json.loads(json.dumps(summary.to_dict())) == summary.to_dict()

    def test_unknown_collector_rejected(self):
        with pytest.raises(ValueError, match="collect"):
            execute_spec(tiny_spec(collect=("nope",)))

    def test_oblivious_rejects_scheduler_variants(self):
        spec = tiny_spec(
            system="oblivious", topology="thinclos", scheduler="stateful"
        )
        with pytest.raises(ValueError, match="negotiator"):
            execute_spec(spec)

    def test_scheduler_variant_runs(self):
        summary = execute_spec(tiny_spec(scheduler="data-size"))
        assert summary.num_flows > 0

    def test_relay_system_runs_and_differs_from_base(self):
        base = execute_spec(tiny_spec(topology="thinclos", load=1.0))
        relay = execute_spec(
            tiny_spec(system="relay", topology="thinclos", load=1.0)
        )
        assert relay.num_flows == base.num_flows
        # Same workload, different forwarding: results need not match, but
        # the relay path must at least run to completion and deliver.
        assert relay.goodput_normalized > 0

    def test_relay_rejects_parallel_topology(self):
        with pytest.raises(ValueError, match="thin-clos"):
            execute_spec(tiny_spec(system="relay", topology="parallel"))

    def test_rotor_system_runs_and_honors_rotor_params(self):
        base = tiny_spec(system="rotor", topology="thinclos", load=0.5)
        summary = execute_spec(base)
        assert summary.num_flows > 0
        assert summary.goodput_normalized > 0
        no_vlb = execute_spec(
            base.with_params(rotor_params={"vlb_relay": False})
        )
        assert no_vlb.num_flows == summary.num_flows
        # Different forwarding discipline must actually change the run.
        assert (
            no_vlb.goodput_gbps,
            no_vlb.mice_fct_p99_ns,
        ) != (summary.goodput_gbps, summary.mice_fct_p99_ns)

    def test_rotor_rejects_scheduler_variants_and_unknown_params(self):
        with pytest.raises(ValueError, match="negotiator"):
            execute_spec(
                tiny_spec(
                    system="rotor", topology="thinclos", scheduler="stateful"
                )
            )
        with pytest.raises(ValueError, match="rotor_params"):
            execute_spec(
                tiny_spec(
                    system="rotor",
                    topology="thinclos",
                    rotor_params={"slice_flavor": "mint"},
                )
            )

    def test_rotor_params_rejected_on_other_systems(self):
        with pytest.raises(ValueError, match="rotor system only"):
            execute_spec(tiny_spec(rotor_params={"packets_per_slice": 4}))

    def test_adaptive_system_runs_and_honors_adaptive_params(self):
        base = tiny_spec(system="adaptive", topology="thinclos", load=0.5)
        summary = execute_spec(base)
        assert summary.num_flows > 0
        assert summary.goodput_normalized > 0
        rotorlike = execute_spec(
            base.with_params(adaptive_params={"residual_ports": 2})
        )
        assert rotorlike.num_flows == summary.num_flows
        # Dedicating every plane to the rotation must change the run.
        assert (
            rotorlike.goodput_gbps,
            rotorlike.mice_fct_p99_ns,
        ) != (summary.goodput_gbps, summary.mice_fct_p99_ns)

    def test_adaptive_rejects_scheduler_variants_and_unknown_params(self):
        with pytest.raises(ValueError, match="negotiator"):
            execute_spec(
                tiny_spec(
                    system="adaptive",
                    topology="thinclos",
                    scheduler="stateful",
                )
            )
        with pytest.raises(ValueError, match="adaptive_params"):
            execute_spec(
                tiny_spec(
                    system="adaptive",
                    topology="thinclos",
                    adaptive_params={"matrix_flavor": "mint"},
                )
            )

    def test_adaptive_params_rejected_on_other_systems(self):
        with pytest.raises(ValueError, match="adaptive system only"):
            execute_spec(tiny_spec(adaptive_params={"ewma_alpha": 0.5}))

    def test_adaptive_accepts_failure_plans(self):
        healthy = execute_spec(
            tiny_spec(system="adaptive", topology="thinclos", load=1.0)
        )
        failed = execute_spec(
            tiny_spec(
                system="adaptive",
                topology="thinclos",
                load=1.0,
                failure_params={
                    "plan": "random",
                    "ratio": 0.2,
                    "fail_at_ns": 0.0,
                    "repair_at_ns": SHORT_NS * 10,
                    "seed": 5,
                },
            )
        )
        assert failed.goodput_normalized < healthy.goodput_normalized

    def test_summary_extra_reports_core_used(self):
        """Observability only: the executor surfaces which core ran in
        RunSummary.extra, never inside the engine's own summary()."""
        summary = execute_spec(tiny_spec())
        assert summary.extra["core_used"] == SimConfig().resolved_core
        adaptive = execute_spec(
            tiny_spec(system="adaptive", topology="thinclos")
        )
        assert adaptive.extra["core_used"] in ("scalar", "vectorized")

    def test_rotor_accepts_failure_plans(self):
        healthy = execute_spec(
            tiny_spec(system="rotor", topology="thinclos", load=1.0)
        )
        failed = execute_spec(
            tiny_spec(
                system="rotor",
                topology="thinclos",
                load=1.0,
                failure_params={
                    "plan": "random",
                    "ratio": 0.2,
                    "fail_at_ns": 0.0,
                    "repair_at_ns": SHORT_NS * 10,
                    "seed": 5,
                },
            )
        )
        assert failed.goodput_normalized < healthy.goodput_normalized

    def test_epoch_params_match_reference_helpers(self):
        """piggyback=False reproduces epoch_config_without_piggyback."""
        from repro.experiments.common import (
            make_topology, run_negotiator, sim_config, workload_for,
        )
        from repro.sim.config import EpochConfig, epoch_config_without_piggyback

        spec = tiny_spec(epoch_params={"piggyback": False})
        summary = execute_spec(spec).to_dict()
        assert summary["extra"].pop("core_used") == SimConfig().resolved_core
        slots = make_topology(TINY, "parallel").predefined_slots
        epoch = epoch_config_without_piggyback(EpochConfig(), 100.0, slots)
        flows = workload_for(TINY, 0.25, duration_ns=SHORT_NS)
        reference = run_negotiator(
            TINY, "parallel", flows,
            duration_ns=SHORT_NS,
            config=sim_config(TINY, epoch=epoch),
        ).summary
        assert summary == reference.to_dict()

    def test_unknown_epoch_param_rejected(self):
        with pytest.raises(ValueError, match="epoch_params"):
            execute_spec(tiny_spec(epoch_params={"warp_factor": 9}))

    def test_unknown_failure_plan_rejected(self):
        with pytest.raises(ValueError, match="failure plan"):
            execute_spec(tiny_spec(failure_params={"plan": "meteor"}))

    def test_unknown_instrument_key_rejected(self):
        with pytest.raises(ValueError, match="instrument"):
            execute_spec(tiny_spec(instrument={"telescope": True}))

    def test_failures_rejected_on_oblivious(self):
        spec = tiny_spec(
            system="oblivious",
            topology="thinclos",
            failure_params={"plan": "egress-ports", "ports": 1},
        )
        with pytest.raises(ValueError, match="negotiator"):
            execute_spec(spec)

    def test_failure_spec_degrades_goodput(self):
        healthy = execute_spec(tiny_spec(load=1.0))
        failed = execute_spec(
            tiny_spec(
                load=1.0,
                failure_params={
                    "plan": "random",
                    "ratio": 0.2,
                    "fail_at_ns": 0.0,
                    "repair_at_ns": SHORT_NS * 10,
                    "seed": 5,
                },
            )
        )
        assert failed.goodput_normalized < healthy.goodput_normalized


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_roundtrip_is_bit_exact(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        spec = tiny_spec()
        summary = execute_spec(spec)
        store.put(spec, summary, elapsed_s=0.5)
        loaded = store.get(spec)
        assert loaded.to_dict() == summary.to_dict()
        assert store.load_specs()[spec.content_hash] == spec

    def test_last_row_wins(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        spec = tiny_spec()
        summary = execute_spec(spec)
        store.put(spec, summary)
        newer = RunSummary.from_dict(summary.to_dict())
        newer.extra["marker"] = 1
        store.put(spec, newer)
        assert store.get(spec).extra == {
            "core_used": SimConfig().resolved_core, "marker": 1
        }
        assert store.compact() == 1
        assert len(store.rows()) == 1

    def test_compact_keeps_stale_hashes(self, tmp_path):
        """compact() dedupes per hash but must not drop rows whose spec no
        longer matches the current grid — the store is append-only history,
        and an old grid may be re-requested later."""
        store = ResultStore(tmp_path / "results.jsonl")
        old = tiny_spec(scenario="hotspot")
        new = tiny_spec(
            scenario="hotspot", scenario_params={"hot_weight": 0.9}
        )
        old_summary = execute_spec(old)
        store.put(old, old_summary)
        store.put(old, old_summary)  # duplicate to give compact work
        store.put(new, execute_spec(new))
        assert store.compact() == 1  # only the duplicate drops
        hashes = store.completed_hashes()
        assert hashes == {old.content_hash, new.content_hash}
        # The stale row still resolves after compaction.
        assert store.get(old).to_dict() == old_summary.to_dict()

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert store.rows() == []
        assert store.load() == {}
        assert not store.exists()

    def test_torn_line_skipped_so_resume_survives_a_crash(self, tmp_path):
        """A sweep killed mid-append must not poison the store."""
        store = ResultStore(tmp_path / "results.jsonl")
        spec = tiny_spec()
        store.put(spec, execute_spec(spec))
        with store.path.open("a") as handle:
            handle.write('{"spec_hash": "torn-off-mid-wri')  # no newline
        assert len(store.rows()) == 1
        assert store.skipped_rows == 1
        assert store.get(spec) is not None

    def test_strict_mode_reports_corruption_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        store = ResultStore(path)
        assert store.rows() == []  # lenient default
        with pytest.raises(StoreError, match="bad.jsonl:1"):
            store.rows(strict=True)


class TestStoreIntegrity:
    """Per-row checksums, atomic compaction, and the content digest
    (DESIGN.md §13)."""

    def test_every_written_row_is_checksummed(self, tmp_path):
        from repro.sweep.store import CHECKSUM_FIELD, row_checksum

        store = ResultStore(tmp_path / "s.jsonl")
        for seed in (1, 2):
            spec = tiny_spec(seed=seed)
            store.put(spec, execute_spec(spec))
        report = store.verify()
        assert report.ok
        assert report.rows == report.lines == report.unique_hashes == 2
        assert report.legacy_rows == 0
        for row in store.rows():
            assert row[CHECKSUM_FIELD] == row_checksum(row)

    def test_corrupted_row_detected_and_never_served(self, tmp_path):
        """A bit flip inside a stored summary must read as corruption, not
        as a subtly wrong result."""
        store = ResultStore(tmp_path / "s.jsonl")
        spec = tiny_spec()
        store.put(spec, execute_spec(spec))
        row = json.loads(store.path.read_text())
        row["summary"]["flows_completed"] = 10**9  # silent data corruption
        store.path.write_text(json.dumps(row, sort_keys=True) + "\n")
        assert store.rows() == []  # lenient: skipped, will re-run
        assert store.skipped_rows == 1
        assert store.get(spec) is None
        report = store.verify()
        assert not report.ok
        assert report.checksum_mismatches == 1
        assert report.torn_lines == 0
        assert "s.jsonl:1" in report.problems[0]
        with pytest.raises(StoreError, match="checksum"):
            store.rows(strict=True)

    def test_legacy_rows_load_and_compact_upgrades_them(self, tmp_path):
        from repro.sweep.store import CHECKSUM_FIELD

        store = ResultStore(tmp_path / "s.jsonl")
        spec = tiny_spec()
        summary = execute_spec(spec)
        store.put(spec, summary)
        row = json.loads(store.path.read_text())
        del row[CHECKSUM_FIELD]  # a row written before checksums existed
        store.path.write_text(json.dumps(row, sort_keys=True) + "\n")
        assert store.get(spec).to_dict() == summary.to_dict()
        assert store.verify().legacy_rows == 1
        store.compact()
        report = store.verify()
        assert report.legacy_rows == 0 and report.ok
        assert store.get(spec).to_dict() == summary.to_dict()

    def test_compact_canonicalizes_order_and_drops_torn_lines(
        self, tmp_path
    ):
        store = ResultStore(tmp_path / "s.jsonl")
        specs = [tiny_spec(seed=seed) for seed in (5, 1, 3)]
        for spec in specs:
            store.put(spec, execute_spec(spec))
        with store.path.open("a") as handle:
            handle.write('{"torn": ')
        assert store.compact() == 1  # the torn line
        hashes = [row["spec_hash"] for row in store.rows()]
        assert hashes == sorted(hashes)
        assert store.verify().ok
        # Already-canonical stores are left untouched (no rewrite).
        sig_before = store.path.stat().st_mtime_ns
        assert store.compact() == 0
        assert store.path.stat().st_mtime_ns == sig_before

    def test_compact_is_atomic_under_crash(self, tmp_path, monkeypatch):
        """A crash at any point during compact() leaves the original store
        fully intact — never a half-written file."""
        import os as os_module

        store = ResultStore(tmp_path / "s.jsonl")
        spec = tiny_spec()
        summary = execute_spec(spec)
        store.put(spec, summary)
        store.put(spec, summary)  # duplicate: compact has work to do
        before = store.path.read_bytes()

        def boom(*args):
            raise OSError("simulated crash")

        # Crash while flushing the temp file, before the swap.
        with monkeypatch.context() as m:
            m.setattr("repro.sweep.backends.os.fsync", boom)
            with pytest.raises(OSError, match="simulated crash"):
                store.compact()
        assert store.path.read_bytes() == before
        assert store.get(spec).to_dict() == summary.to_dict()

        # Crash at the atomic swap itself.
        real_replace = os_module.replace
        with monkeypatch.context() as m:
            m.setattr("repro.sweep.backends.os.replace", boom)
            with pytest.raises(OSError, match="simulated crash"):
                store.compact()
        assert store.path.read_bytes() == before
        assert real_replace is os_module.replace  # patch scoped correctly

        # With the "crashes" over, compaction completes and verifies.
        assert store.compact() == 1
        assert store.verify().ok
        assert not store.path.with_suffix(".tmp").exists()
        assert store.get(spec).to_dict() == summary.to_dict()

    def test_content_digest_ignores_order_duplicates_and_elapsed(
        self, tmp_path
    ):
        spec_a, spec_b = tiny_spec(seed=1), tiny_spec(seed=2)
        summary_a, summary_b = execute_spec(spec_a), execute_spec(spec_b)

        one = ResultStore(tmp_path / "one.jsonl")
        one.put(spec_a, summary_a, elapsed_s=0.5)
        one.put(spec_b, summary_b, elapsed_s=0.1)

        other = ResultStore(tmp_path / "other.jsonl")
        other.put(spec_b, summary_b, elapsed_s=9.9)
        other.put(spec_a, summary_a, elapsed_s=1.5)
        other.put(spec_a, summary_a, elapsed_s=2.5)  # superseded duplicate

        assert one.content_digest() == other.content_digest()

        # But an actual result difference changes the digest.
        differs = ResultStore(tmp_path / "differs.jsonl")
        mutated = RunSummary.from_dict(summary_a.to_dict())
        mutated.extra["marker"] = 1
        differs.put(spec_a, mutated, elapsed_s=0.5)
        differs.put(spec_b, summary_b, elapsed_s=0.1)
        assert differs.content_digest() != one.content_digest()

    def test_get_is_one_parse_per_file_state(self, tmp_path, monkeypatch):
        """The lookup path must not re-read the whole file per call: a
        batch of get()s costs one rows() pass, and only a file change
        (our put, or another process appending) triggers a reparse."""
        specs = [tiny_spec(seed=seed) for seed in (1, 2, 3)]
        summaries = {s.content_hash: execute_spec(s) for s in specs}
        writer = ResultStore(tmp_path / "s.jsonl")
        for spec in specs:
            writer.put(spec, summaries[spec.content_hash])

        parses = 0
        real_rows = ResultStore.rows

        def counting_rows(self, strict=False):
            nonlocal parses
            parses += 1
            return real_rows(self, strict)

        monkeypatch.setattr(ResultStore, "rows", counting_rows)
        store = ResultStore(tmp_path / "s.jsonl")
        for spec in specs:
            assert store.get(spec) is not None
        store.completed_hashes()
        store.load()
        assert parses == 1

        # Our own append invalidates: exactly one more parse.
        extra = tiny_spec(seed=4)
        store.put(extra, execute_spec(extra))
        assert store.get(extra) is not None
        assert parses == 2
        store.get(specs[0])
        assert parses == 2

        # An append from another process changes the stat signature.
        foreign = tiny_spec(seed=5)
        writer.put(foreign, execute_spec(foreign))
        assert store.get(foreign) is not None
        assert parses == 3


# ---------------------------------------------------------------------------
# the runner: determinism and resume
# ---------------------------------------------------------------------------


class TestSweepRunner:
    def test_parallel_bit_identical_to_serial(self):
        """The acceptance contract: jobs=4 == jobs=1 over >= 8 specs."""
        specs = grid_specs()
        assert len(specs) >= 8
        serial = SweepRunner(jobs=1).run(specs)
        parallel = SweepRunner(jobs=4).run(specs)
        assert set(serial) == set(parallel)
        for spec_hash, summary in serial.items():
            assert summary.to_dict() == parallel[spec_hash].to_dict()

    def test_resume_executes_zero_runs(self, tmp_path):
        specs = grid_specs()
        store = ResultStore(tmp_path / "sweep.jsonl")
        first = SweepRunner(jobs=2, store=store)
        initial = first.run(specs)
        assert first.executed == len(specs)

        resumed = SweepRunner(jobs=2, store=store, resume=True)
        results = resumed.run(specs)
        assert resumed.executed == 0
        assert resumed.cached == len(specs)
        for spec_hash, summary in initial.items():
            assert results[spec_hash].to_dict() == summary.to_dict()

    def test_partial_resume_runs_only_new_specs(self, tmp_path):
        store = ResultStore(tmp_path / "sweep.jsonl")
        old = tiny_spec()
        SweepRunner(store=store).run([old])
        new = tiny_spec(load=0.5)
        runner = SweepRunner(store=store, resume=True)
        results = runner.run([old, new])
        assert runner.executed == 1
        assert runner.cached == 1
        assert set(results) == {old.content_hash, new.content_hash}

    def test_duplicate_specs_run_once(self):
        runner = SweepRunner()
        results = runner.run([tiny_spec(), tiny_spec()])
        assert runner.executed == 1
        assert len(results) == 1

    def test_memo_spans_run_calls_without_a_store(self):
        """One runner handed to several experiments executes shared specs
        once — the `repro run --all` cross-experiment dedupe contract."""
        runner = SweepRunner()
        first = runner.run([tiny_spec()])
        second = runner.run([tiny_spec(), tiny_spec(load=0.5)])
        assert runner.executed == 2  # the shared spec ran only once
        assert runner.cached == 1
        spec_hash = tiny_spec().content_hash
        assert second[spec_hash].to_dict() == first[spec_hash].to_dict()

    def test_resume_without_store_rejected(self):
        with pytest.raises(ValueError, match="store"):
            SweepRunner(resume=True)

    def test_stale_store_rows_are_reported_not_served(self, tmp_path):
        """Changing scenario params strands the old rows: the new spec
        re-runs (correctness) and the stale rows are surfaced (telemetry),
        instead of either silently re-running or wrongly cache-hitting."""
        store = ResultStore(tmp_path / "sweep.jsonl")
        old = tiny_spec(scenario="hotspot")
        SweepRunner(store=store).run([old])

        new = tiny_spec(
            scenario="hotspot", scenario_params={"hot_weight": 0.9}
        )
        assert new.content_hash != old.content_hash
        runner = SweepRunner(store=store, resume=True)
        runner.run([new])
        assert runner.executed == 1  # params changed -> must re-run
        assert runner.cached == 0
        assert runner.stale_stored_hashes() == {old.content_hash}

        # Re-requesting the old grid clears its staleness.
        runner.run([old])
        assert runner.stale_stored_hashes() == set()

    def test_stale_hashes_empty_without_store(self):
        assert SweepRunner().stale_stored_hashes() == set()


# ---------------------------------------------------------------------------
# experiments declare their runs as specs
# ---------------------------------------------------------------------------


class TestExperimentSpecs:
    def test_fig9_sweep_through_store_caches(self, tmp_path):
        from repro.experiments.fig9_main_results import load_specs

        grid = load_specs(TINY, loads=(0.1,))
        specs = [s for per_load in grid.values() for s in per_load.values()]
        assert len(specs) == 6  # six systems at one load
        assert len({s.content_hash for s in specs}) == 6

    def test_fig7a_and_fig7b_specs_have_collectors(self):
        from repro.experiments.fig7_alltoall import alltoall_spec
        from repro.experiments.fig7_incast import incast_spec

        a = incast_spec(TINY, "parallel", degree=2)
        assert a.collect == ("incast_finish_ns",)
        assert a.until_complete
        b = alltoall_spec(TINY, "oblivious", flow_kb=1)
        assert b.system == "oblivious" and b.topology == "thinclos"
        assert b.collect == ("alltoall_goodput_gbps",)

    def test_fig6_cached_rerun_is_identical(self, tmp_path):
        from repro.experiments import fig6_fct_cdf

        store = ResultStore(tmp_path / "fig6.jsonl")
        hot = fig6_fct_cdf.run(TINY, runner=SweepRunner(store=store))
        cold_runner = SweepRunner(store=store, resume=True)
        cold = fig6_fct_cdf.run(TINY, runner=cold_runner)
        assert cold_runner.executed == 0
        assert cold.rows == hot.rows


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_cli(*args: str, cwd=None) -> subprocess.CompletedProcess:
    src = str(Path(__file__).resolve().parent.parent / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
    )


class TestSweepCli:
    def test_list_scenarios(self):
        proc = run_cli("sweep", "--list-scenarios")
        assert proc.returncode == 0
        assert "hotspot" in proc.stdout
        assert "ring-allreduce" in proc.stdout

    def test_dry_run_prints_grid(self):
        proc = run_cli(
            "sweep", "--scale", "tiny", "--dry-run",
            "--load", "0.1", "--load", "0.2",
        )
        assert proc.returncode == 0
        assert "2 specs" in proc.stdout

    def test_unknown_scenario_fails_cleanly(self):
        proc = run_cli("sweep", "--scenario", "quantum", "--dry-run")
        assert proc.returncode == 2
        assert "unknown scenario" in proc.stderr

    def test_invalid_load_fails_cleanly(self):
        proc = run_cli(
            "sweep", "--scale", "tiny", "--load", "0", "--dry-run"
        )
        assert proc.returncode == 2
        assert "load must be positive" in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_bad_scenario_param_rejected_even_on_dry_run(self):
        proc = run_cli(
            "sweep", "--scale", "tiny",
            "--scenario", "poisson:bogus=1", "--dry-run",
        )
        assert proc.returncode == 2
        assert "bogus" in proc.stderr

    def test_oblivious_forced_onto_thinclos_and_deduped(self):
        proc = run_cli(
            "sweep", "--scale", "tiny", "--system", "oblivious",
            "--topology", "parallel", "--topology", "thinclos",
            "--load", "0.1", "--dry-run",
        )
        assert proc.returncode == 0
        assert "oblivious thinclos" in proc.stdout
        assert "oblivious parallel" not in proc.stdout
        assert "1 specs" in proc.stdout  # duplicates collapsed

    def test_explicit_default_param_hashes_like_default(self):
        """CLI specs carry resolved params, so the hash is self-describing."""
        base = (
            "sweep", "--scale", "tiny", "--scenario", "hotspot",
            "--load", "0.1", "--dry-run",
        )
        explicit = (
            "sweep", "--scale", "tiny",
            "--scenario", "hotspot:hot_weight=0.75",  # the registered default
            "--load", "0.1", "--dry-run",
        )
        a, b = run_cli(*base), run_cli(*explicit)
        assert a.returncode == 0 and b.returncode == 0
        assert a.stdout.split()[0] == b.stdout.split()[0]

    def test_zero_jobs_rejected_cleanly(self):
        for cmd in (
            ("sweep", "--scale", "tiny", "--jobs", "0", "--dry-run"),
            ("run", "fig6", "--scale", "tiny", "--jobs", "0"),
        ):
            proc = run_cli(*cmd)
            assert proc.returncode == 2
            assert "jobs" in proc.stderr
            assert "Traceback" not in proc.stderr

    def test_sweep_json_and_resume(self, tmp_path):
        args = (
            "sweep", "--scale", "tiny", "--scenario", "poisson",
            "--load", "0.1", "--duration-ms", "0.15",
            "--store", str(tmp_path / "s.jsonl"), "--json",
        )
        first = run_cli(*args)
        assert first.returncode == 0, first.stderr
        payload = json.loads(first.stdout)
        assert payload["runs"][0]["summary"]["num_flows"] > 0
        assert payload["runs"][0]["cached"] is False
        assert payload["runs"][0]["attempts"] == 1
        assert payload["runs"][0]["attempt_statuses"] == ["ok"]
        assert payload["totals"] == {
            "specs": 1, "executed": 1, "cached": 0,
            "retried": 0, "quarantined": 0, "failed": 0,
        }
        assert "1 executed" in first.stderr

        second = run_cli(*args, "--resume")
        assert second.returncode == 0, second.stderr
        assert "0 executed, 1 cached" in second.stderr
        cached_payload = json.loads(second.stdout)
        # The simulation results are identical; only the caching metadata
        # (cached/attempts/totals) reflects that nothing re-executed.
        for row, cached_row in zip(payload["runs"], cached_payload["runs"]):
            assert cached_row["spec_hash"] == row["spec_hash"]
            assert cached_row["spec"] == row["spec"]
            assert cached_row["summary"] == row["summary"]
            assert cached_row["cached"] is True
            assert cached_row["attempts"] == 0
            assert cached_row["attempt_statuses"] == []
        assert cached_payload["totals"] == {
            "specs": 1, "executed": 0, "cached": 1,
            "retried": 0, "quarantined": 0, "failed": 0,
        }

    def test_run_json_output(self):
        proc = run_cli("run", "fig7a", "--scale", "tiny", "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["results"][0]["experiment"] == "Fig 7a"
        assert payload["results"][0]["rows"]

    def test_resume_reports_stale_rows(self, tmp_path):
        store = str(tmp_path / "s.jsonl")
        base = (
            "sweep", "--scale", "tiny", "--load", "0.1",
            "--duration-ms", "0.15", "--store", store,
        )
        first = run_cli(*base, "--scenario", "hotspot")
        assert first.returncode == 0, first.stderr
        # Same grid with a changed parameter: old row goes stale.
        second = run_cli(
            *base, "--scenario", "hotspot:hot_weight=0.9", "--resume"
        )
        assert second.returncode == 0, second.stderr
        assert "1 executed, 0 cached" in second.stdout
        assert "1 stored rows ignored (stale spec hashes" in second.stdout

    def test_run_requires_experiments_or_all(self):
        proc = run_cli("run")
        assert proc.returncode == 2
        assert "--all" in proc.stderr

    def test_run_all_rejects_explicit_names(self):
        proc = run_cli("run", "fig6", "--all")
        assert proc.returncode == 2

    def test_run_with_store_is_resumable(self, tmp_path):
        """The reproduce-all contract at experiment granularity: a second
        invocation against the same store executes zero simulations."""
        store = str(tmp_path / "repro.jsonl")
        args = (
            "run", "fig6", "fig7a", "--scale", "micro",
            "--store", store, "--json",
        )
        first = run_cli(*args)
        assert first.returncode == 0, first.stderr
        assert "0 simulations executed" not in first.stderr
        second = run_cli(*args)
        assert second.returncode == 0, second.stderr
        assert "0 simulations executed" in second.stderr
        assert json.loads(second.stdout) == json.loads(first.stdout)


class TestStoreCli:
    """``repro store verify`` / ``repro store compact``."""

    def seeded_store(self, tmp_path) -> str:
        path = str(tmp_path / "s.jsonl")
        proc = run_cli(
            "sweep", "--scale", "tiny", "--scenario", "poisson",
            "--load", "0.1", "--load", "0.25",
            "--duration-ms", "0.15", "--store", path,
        )
        assert proc.returncode == 0, proc.stderr
        return path

    def test_verify_ok_with_digest(self, tmp_path):
        path = self.seeded_store(tmp_path)
        proc = run_cli("store", "verify", path, "--digest")
        assert proc.returncode == 0, proc.stderr
        assert "2 valid row(s), 2 unique spec(s)" in proc.stdout
        assert "content digest: " in proc.stdout
        digest = proc.stdout.rsplit("content digest: ", 1)[1].strip()
        assert digest == ResultStore(path).content_digest()

    def test_verify_reports_corruption_and_compact_heals(self, tmp_path):
        path = self.seeded_store(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"spec_hash": "torn-off-mid')
        proc = run_cli("store", "verify", path)
        assert proc.returncode == 1
        assert "BAD" in proc.stdout
        assert "torn line(s)" in proc.stderr
        compacted = run_cli("store", "compact", path)
        assert compacted.returncode == 0, compacted.stderr
        assert "1 row(s) dropped" in compacted.stdout
        assert "2 row(s) kept" in compacted.stdout
        healed = run_cli("store", "verify", path)
        assert healed.returncode == 0
        assert "2 valid row(s)" in healed.stdout

    def test_verify_missing_store_is_usage_error(self, tmp_path):
        proc = run_cli("store", "verify", str(tmp_path / "absent.jsonl"))
        assert proc.returncode == 2
        assert "no such store" in proc.stderr


class TestSweepCliResilience:
    """The fault-tolerance flags, minus chaos (chaos CLI runs live in
    tests/test_chaos.py)."""

    def test_negative_retries_rejected(self, tmp_path):
        proc = run_cli(
            "sweep", "--scale", "tiny", "--load", "0.1",
            "--duration-ms", "0.15",
            "--store", str(tmp_path / "s.jsonl"), "--retries", "-1",
        )
        assert proc.returncode == 2
        assert "--retries" in proc.stderr

    def test_quarantine_without_default_path_still_derives_sidecar(
        self, tmp_path
    ):
        """--on-error quarantine with only a store derives the sidecar
        path; a clean sweep leaves no sidecar behind."""
        store = str(tmp_path / "s.jsonl")
        proc = run_cli(
            "sweep", "--scale", "tiny", "--load", "0.1",
            "--duration-ms", "0.15", "--store", store,
            "--on-error", "quarantine", "--retries", "1",
        )
        assert proc.returncode == 0, proc.stderr
        assert not (tmp_path / "s.quarantine.jsonl").exists()

    def test_zero_timeout_rejected(self, tmp_path):
        proc = run_cli(
            "sweep", "--scale", "tiny", "--load", "0.1",
            "--duration-ms", "0.15",
            "--store", str(tmp_path / "s.jsonl"), "--timeout-s", "0",
        )
        assert proc.returncode == 2
        assert "timeout_s" in proc.stderr
