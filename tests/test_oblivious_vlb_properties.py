"""Property tests for the baseline's VLB spreading and rotor schedule."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Flow, ObliviousSimulator, SimConfig, ThinClos


def make_sim(flows, num_tors=8, ports=2, pq=True, seed=0):
    config = SimConfig(
        num_tors=num_tors,
        ports_per_tor=ports,
        uplink_gbps=100.0,
        host_aggregate_gbps=ports * 100.0 / 2.0,
        priority_queue_enabled=pq,
        seed=seed,
    )
    return ObliviousSimulator(config, ThinClos(num_tors, ports, num_tors // ports), flows)


class TestSpreading:
    @given(
        size=st.integers(1, 300_000),
        seed=st.integers(0, 2**16),
        pq=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_staged_bytes_equal_flow_size(self, size, seed, pq):
        """VLB spreading conserves bytes exactly across stage queues."""
        flow = Flow(fid=0, src=0, dst=1, size_bytes=size, arrival_ns=0.0)
        sim = make_sim([flow], pq=pq, seed=seed)
        sim._inject_arrivals(0.0)
        assert sim.staged_bytes_at(0) == size
        total = sum(
            queue.pending_bytes for queue in sim._stage[0].values()
        )
        assert total == size

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_elephant_spreads_to_every_intermediate(self, seed):
        """A flow with >= one cell per peer touches all N-1 stage queues.

        With PIAS disabled the flow is a single band, so the even split is
        exact; with PIAS each band spreads independently (checked below).
        """
        n = 8
        payload = 1115
        size = payload * (n - 1) * 3
        flow = Flow(fid=0, src=2, dst=5, size_bytes=size, arrival_ns=0.0)
        sim = make_sim([flow], pq=False, seed=seed)
        sim._inject_arrivals(0.0)
        assert len(sim._stage[2]) == n - 1
        per_queue = [q.pending_bytes for q in sim._stage[2].values()]
        # Even split within one byte of each other.
        assert max(per_queue) - min(per_queue) <= 1

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_pias_bands_spread_independently(self, seed):
        """Each PIAS band of an elephant spreads over the intermediates on
        its own, so every stage queue gets its share of the big band while
        the 1 KB top band lands on a single lucky peer."""
        n = 8
        size = 1115 * (n - 1) * 3
        flow = Flow(fid=0, src=2, dst=5, size_bytes=size, arrival_ns=0.0)
        sim = make_sim([flow], seed=seed)
        sim._inject_arrivals(0.0)
        assert len(sim._stage[2]) == n - 1
        band0_totals = [q.band_bytes(0) for q in sim._stage[2].values()]
        assert sorted(band0_totals, reverse=True)[0] == 1000
        assert sum(band0_totals) == 1000

    @given(size=st.integers(1, 1000), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_single_cell_mouse_targets_one_intermediate(self, size, seed):
        # Up to 1000 B fits the top PIAS band in one cell.
        flow = Flow(fid=0, src=0, dst=3, size_bytes=size, arrival_ns=0.0)
        sim = make_sim([flow], seed=seed)
        sim._inject_arrivals(0.0)
        assert len(sim._stage[0]) == 1

    def test_spreading_is_seed_deterministic(self):
        def stage_map(seed):
            flow = Flow(fid=0, src=0, dst=3, size_bytes=5000, arrival_ns=0.0)
            sim = make_sim([flow], seed=seed)
            sim._inject_arrivals(0.0)
            return {
                peer: queue.pending_bytes
                for peer, queue in sim._stage[0].items()
            }

        assert stage_map(7) == stage_map(7)

    @given(
        sizes=st.lists(st.integers(1, 50_000), min_size=1, max_size=6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_full_run_conserves_and_completes(self, sizes, seed):
        rng = random.Random(seed)
        flows = []
        for fid, size in enumerate(sizes):
            src = rng.randrange(8)
            dst = (src + rng.randrange(1, 8)) % 8
            flows.append(
                Flow(fid=fid, src=src, dst=dst, size_bytes=size, arrival_ns=0.0)
            )
        sim = make_sim(flows, seed=seed)
        assert sim.run_until_complete(max_ns=50_000_000)
        assert sim.tracker.delivered_bytes == sum(sizes)
        assert sim.total_queued_bytes == 0


class TestPiasBandsAtSources:
    def test_band_chunks_match_thresholds(self):
        sim = make_sim([])
        assert sim._band_chunks(500) == [(0, 500)]
        assert sim._band_chunks(4000) == [(0, 1000), (1, 3000)]
        assert sim._band_chunks(50_000) == [(0, 1000), (1, 9000), (2, 40_000)]

    def test_band_chunks_single_band_without_pq(self):
        sim = make_sim([], pq=False)
        assert sim._band_chunks(50_000) == [(0, 50_000)]

    @given(size=st.integers(1, 200_000))
    @settings(max_examples=60, deadline=None)
    def test_band_chunks_conserve_bytes(self, size):
        sim = make_sim([])
        assert sum(nbytes for _band, nbytes in sim._band_chunks(size)) == size


class TestRotorTiming:
    def test_first_hop_leaves_no_earlier_than_assigned_slot(self):
        """A staged cell departs only when the rotor offers its intermediate:
        its delivery is never before one slot plus propagation."""
        flow = Flow(fid=0, src=0, dst=1, size_bytes=500, arrival_ns=0.0)
        sim = make_sim([flow], seed=1)
        sim.run_until_complete(max_ns=10_000_000)
        assert flow.completed_ns >= sim.slot_ns + sim.config.propagation_ns

    def test_cells_of_one_flow_may_arrive_out_of_order(self):
        """VLB reorders across intermediates; completion still waits for the
        last byte (delivered bytes accumulate to the exact size)."""
        flow = Flow(fid=0, src=0, dst=1, size_bytes=20_000, arrival_ns=0.0)
        sim = make_sim([flow], seed=2)
        assert sim.run_until_complete(max_ns=10_000_000)
        assert flow.remaining_bytes == 0
        expected_cells = math.ceil(20_000 / 1115)
        assert expected_cells > 1  # the reordering scenario is exercised
