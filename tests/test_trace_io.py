"""Tests for workload serialization (bring-your-own-trace support)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.flows import Flow
from repro.workloads import trace_io
from repro.workloads.generators import poisson_workload
from repro.workloads.traces import hadoop


def make_flows():
    return [
        Flow(fid=0, src=0, dst=1, size_bytes=500, arrival_ns=10.5, tag="a"),
        Flow(fid=1, src=2, dst=3, size_bytes=10_000, arrival_ns=5.0),
    ]


class TestRoundTrip:
    def test_dumps_loads_roundtrip(self):
        original = make_flows()
        restored = trace_io.loads(trace_io.dumps(original))
        assert len(restored) == 2
        # Sorted by arrival on load.
        assert [f.fid for f in restored] == [1, 0]
        loaded = {f.fid: f for f in restored}
        for flow in original:
            twin = loaded[flow.fid]
            assert (twin.src, twin.dst) == (flow.src, flow.dst)
            assert twin.size_bytes == flow.size_bytes
            assert twin.arrival_ns == flow.arrival_ns
            assert twin.tag == flow.tag

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "workload.csv"
        trace_io.save(make_flows(), path)
        assert len(trace_io.load(path)) == 2

    def test_generated_workload_roundtrips_exactly(self):
        flows = poisson_workload(
            hadoop(), 0.5, 8, 400.0, 50_000, random.Random(3)
        )
        restored = trace_io.loads(trace_io.dumps(flows))
        assert [(f.fid, f.src, f.dst, f.size_bytes, f.arrival_ns)
                for f in restored] == [
            (f.fid, f.src, f.dst, f.size_bytes, f.arrival_ns) for f in flows
        ]

    @given(
        arrivals=st.lists(
            st.floats(0, 1e9, allow_nan=False), min_size=1, max_size=20
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_float_arrivals_roundtrip_bit_exact(self, arrivals):
        flows = [
            Flow(fid=i, src=0, dst=1, size_bytes=100, arrival_ns=t)
            for i, t in enumerate(arrivals)
        ]
        restored = trace_io.loads(trace_io.dumps(flows))
        assert sorted(f.arrival_ns for f in restored) == sorted(arrivals)


class TestValidation:
    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            trace_io.loads("")

    def test_wrong_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            trace_io.loads("a,b,c\n1,2,3\n")

    def test_short_row_rejected(self):
        text = ",".join(trace_io.HEADER) + "\n1,2,3\n"
        with pytest.raises(ValueError, match="fields"):
            trace_io.loads(text)

    def test_duplicate_fids_rejected(self):
        text = (
            ",".join(trace_io.HEADER)
            + "\n0,0,1,100,0.0,\n0,1,2,100,1.0,\n"
        )
        with pytest.raises(ValueError, match="duplicate"):
            trace_io.loads(text)

    def test_fabric_validation(self):
        flows = [Flow(fid=0, src=0, dst=9, size_bytes=10, arrival_ns=0.0)]
        with pytest.raises(ValueError, match="destination"):
            trace_io.validate_for_fabric(flows, num_tors=4)
        trace_io.validate_for_fabric(flows, num_tors=16)
