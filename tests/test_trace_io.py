"""Tests for workload serialization (bring-your-own-trace support)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.flows import Flow
from repro.workloads import trace_io
from repro.workloads.generators import poisson_workload
from repro.workloads.traces import hadoop


def make_flows():
    return [
        Flow(fid=0, src=0, dst=1, size_bytes=500, arrival_ns=10.5, tag="a"),
        Flow(fid=1, src=2, dst=3, size_bytes=10_000, arrival_ns=5.0),
    ]


class TestRoundTrip:
    def test_dumps_loads_roundtrip(self):
        original = make_flows()
        restored = trace_io.loads(trace_io.dumps(original))
        assert len(restored) == 2
        # Sorted by arrival on load.
        assert [f.fid for f in restored] == [1, 0]
        loaded = {f.fid: f for f in restored}
        for flow in original:
            twin = loaded[flow.fid]
            assert (twin.src, twin.dst) == (flow.src, flow.dst)
            assert twin.size_bytes == flow.size_bytes
            assert twin.arrival_ns == flow.arrival_ns
            assert twin.tag == flow.tag

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "workload.csv"
        trace_io.save(make_flows(), path)
        assert len(trace_io.load(path)) == 2

    def test_generated_workload_roundtrips_exactly(self):
        flows = poisson_workload(
            hadoop(), 0.5, 8, 400.0, 50_000, random.Random(3)
        )
        restored = trace_io.loads(trace_io.dumps(flows))
        assert [(f.fid, f.src, f.dst, f.size_bytes, f.arrival_ns)
                for f in restored] == [
            (f.fid, f.src, f.dst, f.size_bytes, f.arrival_ns) for f in flows
        ]

    @given(
        arrivals=st.lists(
            st.floats(0, 1e9, allow_nan=False), min_size=1, max_size=20
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_float_arrivals_roundtrip_bit_exact(self, arrivals):
        flows = [
            Flow(fid=i, src=0, dst=1, size_bytes=100, arrival_ns=t)
            for i, t in enumerate(arrivals)
        ]
        restored = trace_io.loads(trace_io.dumps(flows))
        assert sorted(f.arrival_ns for f in restored) == sorted(arrivals)


class TestValidation:
    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            trace_io.loads("")

    def test_wrong_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            trace_io.loads("a,b,c\n1,2,3\n")

    def test_short_row_rejected(self):
        text = ",".join(trace_io.HEADER) + "\n1,2,3\n"
        with pytest.raises(ValueError, match="fields"):
            trace_io.loads(text)

    def test_duplicate_fids_rejected_with_both_lines(self):
        text = (
            ",".join(trace_io.HEADER)
            + "\n0,0,1,100,0.0,\n0,1,2,100,1.0,\n"
        )
        with pytest.raises(
            ValueError, match=r"line 3: duplicate flow id 0 .*line 2"
        ):
            trace_io.loads(text)

    def _row(self, fid="0", src="0", dst="1", size="100", arrival="0.0"):
        return (
            ",".join(trace_io.HEADER)
            + f"\n{fid},{src},{dst},{size},{arrival},\n"
        )

    def test_non_integer_fid_located(self):
        with pytest.raises(ValueError, match="line 2: fid must be an integer"):
            trace_io.loads(self._row(fid="x"))

    def test_non_numeric_arrival_located(self):
        with pytest.raises(
            ValueError, match="line 2: arrival_ns must be a number"
        ):
            trace_io.loads(self._row(arrival="soon"))

    def test_negative_size_located(self):
        with pytest.raises(
            ValueError, match="line 2: flow size must be positive, got -5"
        ):
            trace_io.loads(self._row(size="-5"))

    def test_zero_size_located(self):
        with pytest.raises(ValueError, match="line 2: flow size"):
            trace_io.loads(self._row(size="0"))

    def test_negative_arrival_located(self):
        with pytest.raises(
            ValueError, match="line 2: arrival time must be non-negative"
        ):
            trace_io.loads(self._row(arrival="-1.0"))

    def test_nan_arrival_rejected(self):
        with pytest.raises(ValueError, match="line 2: arrival time"):
            trace_io.loads(self._row(arrival="nan"))

    def test_self_loop_located(self):
        with pytest.raises(ValueError, match="line 2: .*src == dst"):
            trace_io.loads(self._row(src="3", dst="3"))

    def test_negative_tor_located(self):
        with pytest.raises(ValueError, match="line 2: ToR indices"):
            trace_io.loads(self._row(src="-1"))

    def test_non_monotonic_rows_are_sorted_stably(self):
        text = (
            ",".join(trace_io.HEADER)
            + "\n0,0,1,100,50.0,\n1,1,2,100,10.0,\n2,2,3,100,50.0,\n"
        )
        flows = trace_io.loads(text)
        assert [f.fid for f in flows] == [1, 0, 2]

    def test_fabric_validation(self):
        flows = [Flow(fid=0, src=0, dst=9, size_bytes=10, arrival_ns=0.0)]
        with pytest.raises(ValueError, match="destination"):
            trace_io.validate_for_fabric(flows, num_tors=4)
        trace_io.validate_for_fabric(flows, num_tors=16)


class TestChunkedStream:
    """The chunked reader: lazy parsing with mid-stream located errors."""

    def _big_trace(self, tmp_path, n=500):
        rng = random.Random(9)
        flows = poisson_workload(
            hadoop(), 0.5, 8, 100.0, 500_000.0, rng
        )[:n]
        path = tmp_path / "trace.csv"
        trace_io.save(flows, path)
        return path, flows

    def test_stream_round_trips_the_eager_loader(self, tmp_path):
        path, _ = self._big_trace(tmp_path)
        eager = trace_io.load(path)
        assert list(trace_io.stream(path)) == eager

    def test_chunks_round_trip_on_multi_chunk_files(self, tmp_path):
        path, flows = self._big_trace(tmp_path)
        chunks = list(trace_io.stream_chunks(path, chunk_rows=64))
        assert len(chunks) == -(-len(flows) // 64)  # spans many chunks
        assert all(len(chunk) == 64 for chunk in chunks[:-1])
        assert [f for chunk in chunks for f in chunk] == trace_io.load(path)

    def test_midstream_error_keeps_its_line_number(self, tmp_path):
        path, flows = self._big_trace(tmp_path, n=100)
        with open(path, "a") as handle:
            handle.write("666,0,0,100,9e9,self-loop\n")
        reader = trace_io.stream(path)
        # Every valid flow is yielded before the bad row raises, and the
        # error names the file line the row sits on.
        good = []
        with pytest.raises(
            ValueError, match=f"line {len(flows) + 2}: .*src == dst"
        ):
            for flow in reader:
                good.append(flow)
        assert len(good) == len(flows)

    def test_stream_rejects_backwards_arrivals(self, tmp_path):
        text = (
            ",".join(trace_io.HEADER)
            + "\n0,0,1,100,50.0,\n1,1,2,100,10.0,\n"
        )
        path = tmp_path / "unsorted.csv"
        path.write_text(text)
        with pytest.raises(ValueError, match="line 3: .*goes backwards"):
            list(trace_io.stream(path))

    def test_stream_duplicate_fid_guard_is_optional(self, tmp_path):
        text = (
            ",".join(trace_io.HEADER)
            + "\n7,0,1,100,10.0,\n7,1,2,100,20.0,\n"
        )
        path = tmp_path / "dups.csv"
        path.write_text(text)
        with pytest.raises(ValueError, match="line 3: duplicate flow id 7"):
            list(trace_io.stream(path))
        flows = list(trace_io.stream(path, check_duplicate_fids=False))
        assert [f.fid for f in flows] == [7, 7]

    def test_bad_chunk_rows(self, tmp_path):
        path, _ = self._big_trace(tmp_path, n=10)
        with pytest.raises(ValueError, match="chunk_rows"):
            list(trace_io.stream_chunks(path, chunk_rows=0))
