"""The streaming data path: lazy sources, bounded tracker, online metrics.

Three contracts from DESIGN.md section 11:

* **Equivalence** — for any workload, both engines produce the same
  simulation under streaming and materialized execution: every exact
  ``RunSummary`` field (counts, goodput, duration) is bit-identical, the
  FCT p99 is bit-identical while the completed-mice count fits the
  reservoir, and the mean matches to float-summation-order tolerance.
  Property-tested over randomized traces, with and without link failures.
* **Boundedness** — a ~million-flow stream holds orders of magnitude fewer
  ``Flow`` objects live than the trace carries, witnessed both by the
  tracker's high-water counter and a gc census.
* **Determinism plumbing** — the ``stream`` spec field stays out of the
  canonical JSON when False (hash stability for every pre-existing store
  and baseline), and streaming spec execution matches materialized
  execution field by field.
"""

from __future__ import annotations

import gc
import itertools
import math
import random

import pytest

from repro.experiments.common import MICRO, make_topology, sim_config
from repro.sim.adaptive import AdaptiveSimulator
from repro.sim.flows import Flow, FlowTracker, ReservoirSampler
from repro.sim.failures import LinkFailureModel, random_failure_plan
from repro.sim.network import NegotiaToRSimulator
from repro.sim.oblivious import ObliviousSimulator
from repro.sim.rotor import RotorSimulator
from repro.sim.source import MaterializedFlowSource, StreamingFlowSource
from repro.sweep import RunSpec, execute_spec, scale_spec_fields
from repro.workloads.distributions import FixedSize
from repro.workloads.streams import (
    heavy_poisson_span_ns,
    heavy_poisson_stream,
    merge_workload_streams,
    poisson_flow_stream,
)
from repro.workloads.generators import poisson_workload

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

NUM_TORS = MICRO.num_tors
DURATION_NS = 60_000.0


# ---------------------------------------------------------------------------
# reservoir sampler
# ---------------------------------------------------------------------------


class TestReservoirSampler:
    def test_exact_below_capacity(self):
        sampler = ReservoirSampler(100, random.Random(0))
        values = [float(v) for v in range(50)]
        for v in values:
            sampler.add(v)
        assert sampler.exact
        assert sampler.count == 50
        assert sampler.sum == sum(values)
        assert sampler.percentile(99) == float(
            __import__("numpy").percentile(values, 99)
        )

    def test_counts_stay_exact_beyond_capacity(self):
        sampler = ReservoirSampler(10, random.Random(0))
        for v in range(1000):
            sampler.add(float(v))
        assert not sampler.exact
        assert sampler.count == 1000
        assert sampler.sum == sum(float(v) for v in range(1000))
        assert sampler.mean() == sampler.sum / 1000

    def test_estimate_is_plausible_beyond_capacity(self):
        # A 500-value reservoir of 20k uniform draws: p99 lands near the
        # true p99 — loose band, but this run is seeded and deterministic.
        sampler = ReservoirSampler(500, random.Random(7))
        rng = random.Random(42)
        for _ in range(20_000):
            sampler.add(rng.uniform(0.0, 1000.0))
        assert 950.0 < sampler.percentile(99) <= 1000.0

    def test_empty_and_invalid(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0, random.Random(0))
        sampler = ReservoirSampler(4, random.Random(0))
        with pytest.raises(ValueError):
            sampler.mean()

    def test_empty_percentile_is_none(self):
        # A bounded tracker with zero completions answers percentile
        # queries with None — consistent with materialized-mode empty
        # summaries — rather than raising from inside numpy.
        sampler = ReservoirSampler(4, random.Random(0))
        assert sampler.percentile(50) is None
        assert sampler.percentile(99) is None
        sampler.add(10.0)
        assert sampler.percentile(99) == 10.0


# ---------------------------------------------------------------------------
# bounded tracker
# ---------------------------------------------------------------------------


def _completed_flow(fid, size, fct):
    flow = Flow(fid=fid, src=0, dst=1, size_bytes=size, arrival_ns=100.0)
    tracker_stub = FlowTracker(2)
    tracker_stub.register(flow)
    tracker_stub.deliver(flow, size, 100.0 + fct)
    return flow


class TestBoundedTracker:
    def test_views_raise_in_bounded_mode(self):
        tracker = FlowTracker(4, retain_flows=False)
        for view in (
            lambda: tracker.flows,
            lambda: tracker.completed_flows,
            lambda: tracker.mice_flows(),
            lambda: tracker.flows_with_tag("x"),
        ):
            with pytest.raises(ValueError, match="bounded-memory"):
                view()

    def test_folds_and_evicts(self):
        tracker = FlowTracker(4, retain_flows=False, reservoir_seed=3)
        flow = Flow(fid=0, src=0, dst=1, size_bytes=2000, arrival_ns=10.0)
        tracker.register(flow)
        assert tracker.live_flows == 1
        tracker.deliver(flow, 2000, 110.0)
        assert tracker.live_flows == 0
        assert tracker.peak_live_flows == 1
        assert tracker.num_flows == 1
        assert tracker.num_completed == 1
        assert tracker.all_complete
        p99, mean = tracker.mice_fct_summary()
        assert p99 == 100.0 and mean == 100.0
        assert tracker.all_fct_sample.count == 1

    def test_threshold_is_fixed_at_fold_time(self):
        tracker = FlowTracker(4, retain_flows=False, mice_threshold_bytes=5000)
        with pytest.raises(ValueError, match="folded mice at 5000"):
            tracker.mice_fct_summary(10_000)

    def test_materialized_summary_unchanged(self):
        tracker = FlowTracker(4)
        flow = Flow(fid=0, src=0, dst=1, size_bytes=2000, arrival_ns=10.0)
        tracker.register(flow)
        tracker.deliver(flow, 2000, 110.0)
        assert tracker.mice_fct_summary() == (100.0, 100.0)
        assert tracker.flows == [flow]
        assert tracker.peak_live_flows == 1


# ---------------------------------------------------------------------------
# flow sources
# ---------------------------------------------------------------------------


class TestFlowSources:
    def _flows(self):
        return [
            Flow(fid=i, src=0, dst=1, size_bytes=100, arrival_ns=10.0 * i)
            for i in range(3)
        ]

    def test_materialized_sorts_and_serves(self):
        flows = self._flows()
        source = MaterializedFlowSource(reversed(flows))
        assert source.next_arrival_ns == 0.0
        assert [source.pop().fid for _ in range(3)] == [0, 1, 2]
        assert source.next_arrival_ns is None
        with pytest.raises(ValueError, match="exhausted"):
            source.pop()

    def test_streaming_is_lazy_and_ordered(self):
        pulled = []

        def gen():
            for flow in self._flows():
                pulled.append(flow.fid)
                yield flow

        source = StreamingFlowSource(gen())
        # Only the one-flow lookahead has been pulled.
        assert pulled == [0]
        assert source.pop().fid == 0
        assert pulled == [0, 1]
        assert source.next_arrival_ns == 10.0

    def test_streaming_rejects_backwards_arrivals(self):
        flows = [
            Flow(fid=0, src=0, dst=1, size_bytes=100, arrival_ns=50.0),
            Flow(fid=1, src=0, dst=1, size_bytes=100, arrival_ns=10.0),
        ]
        source = StreamingFlowSource(iter(flows))
        with pytest.raises(ValueError, match="non-decreasing"):
            source.pop()


# ---------------------------------------------------------------------------
# lazy generators
# ---------------------------------------------------------------------------


class TestStreamGenerators:
    def test_poisson_stream_matches_materialized(self):
        args = (FixedSize(1500), 0.6, NUM_TORS, MICRO.host_aggregate_gbps)
        eager = poisson_workload(*args, 50_000.0, random.Random(11))
        lazy = list(poisson_flow_stream(*args, 50_000.0, random.Random(11)))
        assert lazy == eager

    def test_heavy_poisson_is_a_superset_prefix(self):
        # Same seed: the count-sized stream yields the duration-bounded
        # stream's flows first, then keeps going.
        args = (FixedSize(1500), 0.6, NUM_TORS, MICRO.host_aggregate_gbps)
        eager = poisson_workload(*args, 50_000.0, random.Random(11))
        assert eager, "vacuous without flows"
        heavy = list(
            itertools.islice(
                heavy_poisson_stream(*args, len(eager), random.Random(11)),
                len(eager),
            )
        )
        assert heavy == eager

    def test_heavy_poisson_count_and_span(self):
        args = (FixedSize(1000), 0.5, NUM_TORS, MICRO.host_aggregate_gbps)
        flows = list(heavy_poisson_stream(*args, 500, random.Random(2)))
        assert len(flows) == 500
        arrivals = [f.arrival_ns for f in flows]
        assert arrivals == sorted(arrivals)
        span = heavy_poisson_span_ns(*args, 500)
        # The realized span concentrates around the expectation.
        assert 0.5 * span < arrivals[-1] < 2.0 * span

    def test_merge_streams_is_lazy(self):
        def endless(start_fid):
            for i in itertools.count():
                yield Flow(
                    fid=start_fid + 2 * i,
                    src=0,
                    dst=1,
                    size_bytes=100,
                    arrival_ns=float(i),
                )

        merged = merge_workload_streams(endless(0), endless(1))
        head = list(itertools.islice(merged, 6))
        assert [f.fid for f in head] == [0, 1, 2, 3, 4, 5]

    def test_merge_rejects_unsorted_stream(self):
        flows = [
            Flow(fid=0, src=0, dst=1, size_bytes=100, arrival_ns=50.0),
            Flow(fid=1, src=0, dst=1, size_bytes=100, arrival_ns=10.0),
        ]
        with pytest.raises(ValueError, match="out of order"):
            list(merge_workload_streams(flows))


# ---------------------------------------------------------------------------
# streaming == materialized (property)
# ---------------------------------------------------------------------------


# Arrivals may land anywhere, including the final partial slot a
# fixed-duration oblivious run never injects: num_flows now counts
# *injected* flows in both execution modes (the parity pinned below), so
# the equivalence property needs no arrival margin.
flow_records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_TORS - 1),
        st.integers(min_value=1, max_value=NUM_TORS - 1),
        st.integers(min_value=200, max_value=60_000),
        st.floats(min_value=0.0, max_value=DURATION_NS),
    ),
    min_size=1,
    max_size=30,
)


def _build_flows(records):
    flows = []
    for fid, (src, dst_offset, size, arrival) in enumerate(records):
        flows.append(
            Flow(
                fid=fid,
                src=src,
                dst=(src + dst_offset) % NUM_TORS,
                size_bytes=size,
                arrival_ns=arrival,
            )
        )
    flows.sort(key=lambda f: f.arrival_ns)
    return flows


def _assert_summaries_match(materialized, streaming):
    for field in (
        "duration_ns",
        "epoch_ns",
        "num_flows",
        "num_completed",
        "goodput_normalized",
        "goodput_gbps",
        # p99 is reservoir-exact here: completed mice always fit the
        # default capacity at these trace sizes, and np.percentile sorts,
        # so fold order cannot matter.
        "mice_fct_p99_ns",
    ):
        assert getattr(materialized, field) == getattr(streaming, field), field
    a, b = materialized.mice_fct_mean_ns, streaming.mice_fct_mean_ns
    if a is None or b is None:
        assert a == b
    else:
        # Same values, different summation order (np.mean's pairwise sum vs
        # the tracker's running sum): documented 1e-9 relative tolerance.
        assert math.isclose(a, b, rel_tol=1e-9)


def _failure_setup(with_failures, seed):
    if not with_failures:
        return {}
    plan, _failed = random_failure_plan(
        NUM_TORS,
        MICRO.ports_per_tor,
        0.25,
        10_000.0,
        40_000.0,
        random.Random(seed),
    )
    return {
        "failure_model": LinkFailureModel(NUM_TORS, MICRO.ports_per_tor),
        "failure_plan": plan,
    }


@settings(max_examples=40, deadline=None)
@given(records=flow_records, with_failures=st.booleans())
def test_negotiator_streaming_matches_materialized(records, with_failures):
    runs = []
    for stream in (False, True):
        flows = _build_flows(records)
        sim = NegotiaToRSimulator(
            sim_config(MICRO),
            make_topology(MICRO, "parallel"),
            iter(flows) if stream else flows,
            stream=stream,
            **_failure_setup(with_failures, seed=1),
        )
        sim.run(DURATION_NS)
        runs.append(sim.summary(DURATION_NS))
    _assert_summaries_match(*runs)


@settings(max_examples=40, deadline=None)
@given(records=flow_records)
def test_oblivious_streaming_matches_materialized(records):
    runs = []
    for stream in (False, True):
        flows = _build_flows(records)
        sim = ObliviousSimulator(
            sim_config(MICRO),
            make_topology(MICRO, "thinclos"),
            iter(flows) if stream else flows,
            stream=stream,
        )
        sim.run(DURATION_NS)
        runs.append(sim.summary(DURATION_NS))
    _assert_summaries_match(*runs)


@settings(max_examples=40, deadline=None)
@given(records=flow_records, with_failures=st.booleans())
def test_rotor_streaming_matches_materialized(records, with_failures):
    runs = []
    for stream in (False, True):
        flows = _build_flows(records)
        sim = RotorSimulator(
            sim_config(MICRO),
            make_topology(MICRO, "thinclos"),
            iter(flows) if stream else flows,
            stream=stream,
            **_failure_setup(with_failures, seed=2),
        )
        sim.run(DURATION_NS)
        runs.append(sim.summary(DURATION_NS))
    _assert_summaries_match(*runs)


@settings(max_examples=40, deadline=None)
@given(records=flow_records, with_failures=st.booleans())
def test_adaptive_streaming_matches_materialized(records, with_failures):
    runs = []
    for stream in (False, True):
        flows = _build_flows(records)
        sim = AdaptiveSimulator(
            sim_config(MICRO),
            make_topology(MICRO, "thinclos"),
            iter(flows) if stream else flows,
            stream=stream,
            **_failure_setup(with_failures, seed=2),
        )
        sim.run(DURATION_NS)
        runs.append(sim.summary(DURATION_NS))
    _assert_summaries_match(*runs)


def test_num_flows_counts_injected_flows_in_both_modes():
    """The PR 4 divergence, now closed: both modes count *injected* flows.

    A flow arriving inside the run's final partial slot is never injected
    (the rotor injects at slot start).  Streaming mode always registered on
    injection and reported 0; materialized mode used to count every
    registered flow and reported 1.  Summaries now report the injected
    count in both modes, so final-partial-slot traces agree field by field.
    """
    records = [(0, 1, 5000, DURATION_NS - 1.0)]
    summaries = []
    for stream in (False, True):
        flows = _build_flows(records)
        sim = ObliviousSimulator(
            sim_config(MICRO),
            make_topology(MICRO, "thinclos"),
            iter(flows) if stream else flows,
            stream=stream,
        )
        sim.run(DURATION_NS)
        summaries.append(sim.summary(DURATION_NS))
    materialized, streaming = summaries
    assert materialized.num_flows == streaming.num_flows == 0
    # The tracker still knows the registered trace size in materialized
    # mode; only the summary's fabric-level count is unified.
    assert materialized.num_completed == streaming.num_completed == 0
    assert materialized.goodput_gbps == streaming.goodput_gbps == 0.0


def test_run_until_complete_drains_the_stream():
    flows = _build_flows([(0, 1, 5000, 1000.0 * i) for i in range(10)])
    sim = NegotiaToRSimulator(
        sim_config(MICRO),
        make_topology(MICRO, "parallel"),
        iter(flows),
        stream=True,
    )
    assert sim.run_until_complete(max_ns=10 * DURATION_NS)
    assert sim.tracker.num_flows == 10
    assert sim.tracker.all_complete


# ---------------------------------------------------------------------------
# spec-level streaming
# ---------------------------------------------------------------------------


class TestStreamSpec:
    def test_stream_false_stays_out_of_the_hash(self):
        spec = RunSpec(scale="micro")
        assert '"stream"' not in spec.canonical_json()
        assert spec.content_hash != spec.with_params(stream=True).content_hash
        # Round-trips in both modes.
        for candidate in (spec, spec.with_params(stream=True)):
            assert RunSpec.from_dict(candidate.to_dict()) == candidate

    @pytest.mark.parametrize(
        "system", ["negotiator", "oblivious", "rotor", "adaptive"]
    )
    def test_execute_spec_streaming_matches_materialized(self, system):
        base = RunSpec(
            **scale_spec_fields(MICRO),
            system=system,
            topology="parallel" if system == "negotiator" else "thinclos",
            scenario="poisson",
            load=0.5,
            seed=5,
            duration_ns=DURATION_NS,
            until_complete=(system != "negotiator"),
            max_ns=100 * DURATION_NS if system != "negotiator" else None,
        )
        _assert_summaries_match(
            execute_spec(base), execute_spec(base.with_params(stream=True))
        )

    def test_streaming_heavy_poisson_spec(self):
        spec = RunSpec(
            **scale_spec_fields(MICRO),
            scenario="heavy-poisson",
            scenario_params={"num_flows": 3000},
            load=0.4,
            seed=5,
            until_complete=True,
            max_ns=100 * MICRO.duration_ns,
            stream=True,
        )
        summary = execute_spec(spec)
        assert summary.num_flows == 3000
        assert summary.num_completed == 3000

    def test_streaming_rejects_collect_and_instrument(self):
        base = RunSpec(**scale_spec_fields(MICRO), stream=True)
        with pytest.raises(ValueError, match="headline summaries only"):
            execute_spec(base.with_params(collect=("mice_cdf",)))
        with pytest.raises(ValueError, match="instrumentation"):
            execute_spec(
                base.with_params(instrument={"bandwidth_bin_ns": 1000.0})
            )
        with pytest.raises(ValueError, match="relay"):
            execute_spec(
                base.with_params(system="relay", topology="thinclos")
            )


# ---------------------------------------------------------------------------
# the memory regression: ~1M flows at bounded residency
# ---------------------------------------------------------------------------


def test_million_flow_stream_keeps_flow_residency_bounded():
    """The eviction guard that keeps the streaming story honest.

    A ~1M-flow heavy-poisson stream runs to completion on the tiny 8-ToR
    fabric.  The tracker's high-water counter must stay thousands of times
    below the trace size, and a gc census must show the Flow population
    returned to its pre-run level — i.e. the engine held O(in-flight), not
    O(trace), objects.  (~10 s; by far the longest tier-1 test, and worth
    it: a single leaked reference anywhere in the streaming path fails it.)
    """
    num_flows = 1_000_000
    load, flow_bytes = 0.5, 1000
    gc.collect()
    flows_before = sum(
        1 for obj in gc.get_objects() if isinstance(obj, Flow)
    )
    distribution = FixedSize(flow_bytes)
    stream = heavy_poisson_stream(
        distribution,
        load,
        NUM_TORS,
        MICRO.host_aggregate_gbps,
        num_flows,
        random.Random(1),
    )
    span = heavy_poisson_span_ns(
        distribution, load, NUM_TORS, MICRO.host_aggregate_gbps, num_flows
    )
    sim = NegotiaToRSimulator(
        sim_config(MICRO), make_topology(MICRO, "parallel"), stream, stream=True
    )
    assert sim.run_until_complete(max_ns=4.0 * span)
    tracker = sim.tracker
    assert tracker.num_flows == num_flows
    assert tracker.num_completed == num_flows
    assert tracker.delivered_bytes == num_flows * flow_bytes
    # Measured ~700 at this load; 10k leaves an order-of-magnitude margin
    # while still sitting 100x below the trace size.
    assert tracker.peak_live_flows < 10_000
    del stream
    gc.collect()
    flows_after = sum(
        1 for obj in gc.get_objects() if isinstance(obj, Flow)
    )
    assert flows_after - flows_before < 10_000
