"""Tests for receiver-side buffering below the ToRs (section 3.6.5)."""

import pytest

from repro import (
    Flow,
    NegotiaToRSimulator,
    ParallelNetwork,
    SimConfig,
    all_to_all_workload,
)
from repro.sim.buffers import ReceiverBuffer


class TestLeakyBucket:
    def test_starts_empty(self):
        buffer = ReceiverBuffer(1000, drain_gbps=8.0)
        assert buffer.occupancy(0.0) == 0.0
        assert buffer.has_room(1000, 0.0)

    def test_fills_and_drains(self):
        buffer = ReceiverBuffer(10_000, drain_gbps=8.0)  # 1 B/ns drain
        buffer.add(5000, now_ns=0.0)
        assert buffer.occupancy(0.0) == 5000
        assert buffer.occupancy(2000.0) == 3000
        assert buffer.occupancy(10_000.0) == 0.0

    def test_room_accounts_for_drain(self):
        buffer = ReceiverBuffer(1000, drain_gbps=8.0)
        buffer.add(1000, now_ns=0.0)
        assert not buffer.has_room(1, 0.0)
        assert buffer.has_room(500, 500.0)

    def test_time_never_goes_backwards(self):
        buffer = ReceiverBuffer(1000, drain_gbps=8.0)
        buffer.add(800, now_ns=100.0)
        # A query with an older timestamp must not refill the bucket.
        assert buffer.occupancy(50.0) == 800

    def test_transient_overfill_allowed(self):
        """In-flight data may land after the buffer filled."""
        buffer = ReceiverBuffer(1000, drain_gbps=8.0)
        buffer.add(900, now_ns=0.0)
        buffer.add(900, now_ns=0.0)
        assert buffer.occupancy(0.0) == 1800

    def test_validation(self):
        with pytest.raises(ValueError):
            ReceiverBuffer(0, 8.0)
        with pytest.raises(ValueError):
            ReceiverBuffer(100, 0.0)
        buffer = ReceiverBuffer(100, 8.0)
        with pytest.raises(ValueError):
            buffer.add(-1, 0.0)


class TestEngineIntegration:
    N, S = 8, 2

    def config(self, buffer_bytes):
        return SimConfig(
            num_tors=self.N,
            ports_per_tor=self.S,
            uplink_gbps=100.0,
            host_aggregate_gbps=100.0,
            receiver_buffer_bytes=buffer_bytes,
        )

    def test_rejects_non_positive_buffer(self):
        with pytest.raises(ValueError):
            self.config(0)

    def test_full_buffer_stops_grants(self):
        """Under a sustained 2x overload of one destination, admission
        control throttles grants so the receive rate tracks the host drain
        rate instead of the optical rate."""

        def rx_rate(buffer_bytes):
            config = self.config(buffer_bytes)
            flows = [
                Flow(fid=i, src=src, dst=0, size_bytes=2_000_000, arrival_ns=0.0)
                for i, src in enumerate((1, 2, 3, 4))
            ]
            sim = NegotiaToRSimulator(
                config, ParallelNetwork(self.N, self.S), flows
            )
            sim.run(400_000)
            return sim.tracker.delivered_bytes * 8.0 / 400_000  # Gbps

        unbounded = rx_rate(None)
        bounded = rx_rate(50_000)
        # Without buffering the destination receives at up to 2x host rate.
        assert unbounded > 130.0
        # With a small buffer, grants throttle near the 100 Gbps drain rate.
        assert bounded < 125.0
        assert bounded < unbounded

    def test_buffered_run_still_conserves_bytes(self):
        config = self.config(100_000)
        flows = all_to_all_workload(self.N, flow_bytes=100_000)
        sim = NegotiaToRSimulator(config, ParallelNetwork(self.N, self.S), flows)
        sim.run(500_000)
        injected = sum(f.size_bytes for f in flows)
        left = sum(f.remaining_bytes for f in flows)
        assert sim.tracker.delivered_bytes + left == injected

    def test_piggyback_path_not_gated(self):
        """Admission control gates grants, not the predefined phase —
        mice keep their bypass."""
        config = self.config(1)  # absurdly small buffer
        flow = Flow(fid=0, src=0, dst=1, size_bytes=500, arrival_ns=0.0)
        sim = NegotiaToRSimulator(config, ParallelNetwork(self.N, self.S), [flow])
        sim.step_epoch()
        assert flow.completed
