"""Tests for the telemetry subsystem (DESIGN.md §14).

The load-bearing contracts:

* telemetry is *observation only* — engine summaries, spec hashes, and
  golden digests are bit-identical with telemetry off and on;
* every event the subsystem writes validates against the closed schema,
  and the JSONL round-trips losslessly;
* worker heartbeats flow over the resilience pipes without ever being
  confused with results, and the aggregator/progress line math is exact
  under a fake clock;
* the campaign manifest matches the runner's retry/quarantine ground
  truth;
* ``EpochStatsRecorder`` stays within its capacity at 100k+ epochs in
  both ring and decimate modes.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path

import pytest

from repro import golden
from repro.experiments import MICRO
from repro.sim.observability import EpochStats, EpochStatsRecorder
from repro.sweep import (
    ResultStore,
    RetryPolicy,
    RunSpec,
    SweepRunner,
    execute_spec,
    scale_spec_fields,
)
from repro.sweep.chaos import CHAOS_ENV
from repro.sweep.resilience import run_with_retries
from repro.telemetry import (
    DEFAULT_CADENCE_NS,
    EVENT_SCHEMA,
    EngineTracer,
    HeartbeatAggregator,
    MemorySink,
    ProgressReporter,
    TELEMETRY_ENV,
    TELEMETRY_VERSION,
    TelemetryWriter,
    analyze,
    build_manifest,
    default_manifest_path,
    heartbeat_payload,
    make_event,
    read_events,
    validate_event,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

SHORT_NS = 80_000.0


def micro_spec(**overrides) -> RunSpec:
    base = dict(
        scenario="poisson",
        load=0.2,
        seed=7,
        duration_ns=SHORT_NS,
        **scale_spec_fields(MICRO),
    )
    base.update(overrides)
    return RunSpec(**base)


def telemetry_env(path: Path, cadence_ns: int = DEFAULT_CADENCE_NS) -> str:
    return json.dumps({"path": str(path), "cadence_ns": cadence_ns})


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# event schema
# ---------------------------------------------------------------------------


class TestEventSchema:
    def test_every_kind_round_trips_through_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = TelemetryWriter(path)
        samples = {
            "campaign-start": dict(campaign="c1", total_specs=4, jobs=2),
            "campaign-end": dict(
                campaign="c1", executed=3, cached=1, failed=0,
                retried=1, quarantined=0, elapsed_s=1.5,
            ),
            "spec-end": dict(
                spec="abc", label="poisson", status="ok", attempts=2,
                elapsed_s=0.25, cached=False,
            ),
            "heartbeat": dict(
                spec="abc", attempt=1, wall_s=0.5, sim_ns=100,
                epochs=3, flows_completed=9, rss_bytes=None,
            ),
            "span": dict(
                engine="negotiator", phase="matching", wall_s=0.01,
                sim_ns=50_000, spec="abc",
            ),
            "counter": dict(
                engine="negotiator", name="grants", delta=12, sim_ns=50_000,
            ),
            "gauge": dict(
                engine="rotor", name="queued_bytes", value=4096.0,
                sim_ns=50_000, spec=None,
            ),
            "run-end": dict(
                engine="oblivious", sim_ns=80_000, wall_s=0.2,
                spans={"drain": 0.1}, counters={"slots": 10},
                gauges={"queued_bytes": 0},
            ),
        }
        assert set(samples) == set(EVENT_SCHEMA)
        emitted = [make_event(kind, **fields) for kind, fields in samples.items()]
        for event in emitted:
            assert validate_event(event) == [], event
            writer.emit(event)
        loaded, torn = read_events(path)
        assert torn == 0
        assert loaded == emitted  # lossless round-trip, order preserved

    @pytest.mark.parametrize(
        "mutate, expected",
        [
            (lambda e: e.update(kind="mystery"), "unknown kind"),
            (lambda e: e.pop("phase"), "missing field 'phase'"),
            (lambda e: e.update(wall_s="fast"), "wrong type"),
            (lambda e: e.update(wall_s=True), "wrong type"),
            (lambda e: e.update(extra=1), "unknown field 'extra'"),
            (lambda e: e.update(v=99), "expected 1"),
            (lambda e: e.update(ts="noon"), "ts is not a number"),
        ],
    )
    def test_violations_are_reported(self, mutate, expected):
        event = make_event(
            "span", engine="negotiator", phase="drain", wall_s=0.1,
            sim_ns=1000,
        )
        mutate(event)
        problems = validate_event(event)
        assert problems, "expected a validation problem"
        assert any(expected in p for p in problems), problems

    def test_schema_version_is_one(self):
        assert TELEMETRY_VERSION == 1
        assert make_event("span")["v"] == 1

    def test_torn_lines_counted_not_fatal(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = make_event("counter", engine="e", name="n", delta=1, sim_ns=0)
        path.write_text(
            json.dumps(good) + "\n" + '{"v": 1, "kind": "cou' + "\n"
        )
        events, torn = read_events(path)
        assert events == [good]
        assert torn == 1


# ---------------------------------------------------------------------------
# engine tracer
# ---------------------------------------------------------------------------


class TestEngineTracer:
    def test_window_deltas_sum_to_run_end_totals(self):
        sink = MemorySink()
        tracer = EngineTracer(sink, "negotiator", spec_hash="ab", cadence_ns=100)
        tracer.add_span("matching", 0.25)
        tracer.count("grants", 3)
        tracer.sample(100, queued_bytes=10)
        tracer.add_span("matching", 0.5)
        tracer.add_span("drain", 1.0)
        tracer.count("grants", 4)
        tracer.count("accepts", 1)
        tracer.finish(250, queued_bytes=0)

        for event in sink.events:
            assert validate_event(event) == [], event
        spans = {}
        for event in sink.of_kind("span"):
            spans[event["phase"]] = spans.get(event["phase"], 0.0) + event["wall_s"]
        counts = {}
        for event in sink.of_kind("counter"):
            counts[event["name"]] = counts.get(event["name"], 0) + event["delta"]
        (run_end,) = sink.of_kind("run-end")
        assert run_end["spans"] == pytest.approx(spans)
        assert run_end["counters"] == counts
        assert run_end["wall_s"] == pytest.approx(0.25 + 0.5 + 1.0)
        assert run_end["gauges"] == {"queued_bytes": 0}

    def test_gauge_cadence_is_sim_time(self):
        sink = MemorySink()
        tracer = EngineTracer(sink, "rotor", cadence_ns=100)
        assert not tracer.gauge_due(99)
        assert tracer.gauge_due(100)
        tracer.sample(130, queued_bytes=1)
        # The next boundary advances by whole periods past the sample point.
        assert not tracer.gauge_due(199)
        assert tracer.gauge_due(200)

    def test_zero_count_emits_nothing(self):
        sink = MemorySink()
        tracer = EngineTracer(sink, "negotiator", cadence_ns=100)
        tracer.count("grants", 0)
        tracer.finish(100)
        assert sink.of_kind("counter") == []

    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError):
            EngineTracer(MemorySink(), "negotiator", cadence_ns=0)


# ---------------------------------------------------------------------------
# observation-only: identical results with telemetry off and on
# ---------------------------------------------------------------------------


class TestZeroInterference:
    @pytest.mark.parametrize(
        "spec",
        [
            micro_spec(),
            micro_spec(system="oblivious", topology="thinclos"),
            micro_spec(system="rotor", topology="thinclos"),
        ],
        ids=["negotiator", "oblivious", "rotor"],
    )
    def test_execute_spec_bit_identical_with_telemetry(
        self, spec, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        plain = execute_spec(spec).to_dict()
        events_path = tmp_path / "events.jsonl"
        monkeypatch.setenv(TELEMETRY_ENV, telemetry_env(events_path))
        traced = execute_spec(spec).to_dict()
        assert traced == plain
        events, torn = read_events(events_path)
        assert torn == 0
        assert events, "telemetry on but no events written"
        for event in events:
            assert validate_event(event) == [], event
        (run_end,) = [e for e in events if e["kind"] == "run-end"]
        assert run_end["engine"] == spec.system
        assert run_end["spec"] == spec.content_hash
        assert run_end["spans"], "no phase spans recorded"

    def test_spec_hash_ignores_telemetry_env(self, tmp_path, monkeypatch):
        spec = micro_spec()
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        off_hash = spec.content_hash
        monkeypatch.setenv(
            TELEMETRY_ENV, telemetry_env(tmp_path / "t.jsonl")
        )
        assert micro_spec().content_hash == off_hash

    def test_golden_digest_unchanged_with_telemetry(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            TELEMETRY_ENV, telemetry_env(tmp_path / "t.jsonl")
        )
        result = golden.compute_result("fig6", MICRO, runner=SweepRunner())
        check = golden.check_golden(GOLDEN_DIR, "fig6", result)
        assert check.expected is not None
        assert check.ok, (
            "golden digest changed when telemetry was enabled: "
            f"{check.digest[:12]} != {check.expected[:12]}"
        )

    def test_sweep_results_identical_with_full_fleet_telemetry(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        specs = [micro_spec(seed=seed) for seed in (1, 2)]
        plain = SweepRunner(store=ResultStore(tmp_path / "a.jsonl")).run(specs)
        traced_runner = SweepRunner(
            store=ResultStore(tmp_path / "b.jsonl"),
            telemetry=tmp_path / "events.jsonl",
            progress=True,
        )
        buffer = io.StringIO()
        monkeypatch.setattr("sys.stderr", buffer)
        traced = traced_runner.run(specs)
        assert {h: s.to_dict() for h, s in traced.items()} == {
            h: s.to_dict() for h, s in plain.items()
        }
        assert os.environ.get(TELEMETRY_ENV) is None  # restored after run
        assert "sweep 2/2 done" in buffer.getvalue()


# ---------------------------------------------------------------------------
# heartbeats
# ---------------------------------------------------------------------------


class TestHeartbeatAggregation:
    def test_latest_wins_and_forget_drops(self):
        clock = FakeClock()
        agg = HeartbeatAggregator(clock=clock)
        agg.record(heartbeat_payload("aa", 1, 0.1))
        clock.advance(1.0)
        agg.record({"spec": "aa", "attempt": 1, "wall_s": 1.1})
        agg.record({"spec": "bb", "attempt": 2, "wall_s": 0.2})
        assert agg.latest("aa")["wall_s"] == 1.1
        assert [p["spec"] for p in agg.running()] == ["aa", "bb"] or [
            p["spec"] for p in agg.running()
        ] == ["bb", "aa"]
        agg.forget("aa")
        assert agg.latest("aa") is None
        assert [p["spec"] for p in agg.running()] == ["bb"]

    def test_staleness_cutoff(self):
        clock = FakeClock()
        agg = HeartbeatAggregator(clock=clock)
        agg.record({"spec": "aa", "attempt": 1, "wall_s": 0.1})
        clock.advance(5.0)
        agg.record({"spec": "bb", "attempt": 1, "wall_s": 0.1})
        clock.advance(6.0)
        # aa is 11s old, bb is 6s old; default cutoff is 10s.
        assert [p["spec"] for p in agg.running()] == ["bb"]
        assert agg.latest("aa") is not None  # stale, not forgotten

    def test_malformed_payload_ignored(self):
        agg = HeartbeatAggregator(clock=FakeClock())
        agg.record({"attempt": 1})
        agg.record({"spec": 42})
        assert agg.running() == []

    def test_payload_shape_validates_as_heartbeat_event(self):
        payload = heartbeat_payload("abc", 2, 1.25)
        event = make_event("heartbeat", **payload)
        assert validate_event(event) == []
        assert payload["spec"] == "abc"
        assert payload["attempt"] == 2

    def test_workers_stream_heartbeats_over_result_pipes(
        self, tmp_path, monkeypatch
    ):
        """A worker slowed by a chaos hang reports liveness before its
        result, and the result still arrives as the spec's last word."""
        spec = micro_spec(seed=99)
        plan = {"faults": [
            {"match": spec.content_hash[:12], "kind": "hang", "hang_s": 0.4},
        ]}
        monkeypatch.setenv(CHAOS_ENV, json.dumps(plan))
        beats: list[dict] = []
        summaries: dict[str, dict] = {}
        outcomes = run_with_retries(
            [spec],
            jobs=1,
            policy=RetryPolicy(max_attempts=1),
            timeout_s=None,
            on_error="fail",
            on_ok=lambda s, summary, outcome: summaries.update(
                {s.content_hash: summary}
            ),
            on_heartbeat=lambda s, payload: beats.append(payload),
            heartbeat_s=0.05,
        )
        assert outcomes[spec.content_hash].ok
        assert spec.content_hash in summaries
        assert len(beats) >= 2, "expected heartbeats during the 0.4s hang"
        for payload in beats:
            assert payload["spec"] == spec.content_hash
            assert payload["attempt"] == 1
            assert payload["wall_s"] > 0
            assert validate_event(make_event("heartbeat", **payload)) == []
        walls = [p["wall_s"] for p in beats]
        assert walls == sorted(walls)


# ---------------------------------------------------------------------------
# progress line
# ---------------------------------------------------------------------------


class TestProgressReporter:
    def make(self, total=4, **kwargs):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            total, stream=stream, clock=clock, **kwargs
        )
        return reporter, clock, stream

    def test_counts_and_line(self):
        reporter, clock, _ = self.make(total=6)
        reporter.spec_cached()
        clock.advance(2.0)
        reporter.spec_finished()
        clock.advance(2.0)
        reporter.spec_finished(attempts=3)
        clock.advance(2.0)
        reporter.spec_finished(status="quarantined")
        reporter.set_running(2)
        line = reporter.line()
        assert "sweep 4/6 done (1 cached)" in line
        assert "2 running" in line
        assert "1 retried, 1 quarantined" in line
        assert "0.5 spec/s" in line
        assert "eta 4s" in line

    def test_eta_math_constant_rate(self):
        reporter, clock, _ = self.make(total=10)
        for _ in range(4):
            clock.advance(1.0)
            reporter.spec_finished()
        # Constant 1 spec/s: EWMA converges to exactly 1.0.
        assert reporter.eta_s() == pytest.approx(6.0)

    def test_all_cached_resume_renders_unknown_eta(self):
        # An all-cached resume completes specs without ever executing
        # one: there is no throughput sample, so the line must say
        # "eta -", not divide by zero or show a stale estimate.
        reporter, _, _ = self.make(total=6)
        for _ in range(3):
            reporter.spec_cached()
        line = reporter.line()
        assert reporter.eta_s() is None
        assert "eta -" in line
        assert "spec/s" not in line

    def test_no_completions_yet_renders_unknown_eta(self):
        reporter, _, _ = self.make(total=6)
        assert "eta -" in reporter.line()

    def test_finished_sweep_has_no_eta_placeholder(self):
        reporter, _, _ = self.make(total=2)
        reporter.spec_cached()
        reporter.spec_cached()
        line = reporter.line()
        assert "eta" not in line

    def test_cache_hits_do_not_skew_rate(self):
        reporter, clock, _ = self.make(total=10)
        clock.advance(1.0)
        reporter.spec_finished()
        clock.advance(1.0)
        reporter.spec_finished()
        rate_before = reporter._rate
        for _ in range(5):
            reporter.spec_cached()  # instant; must not touch the EWMA
        assert reporter._rate == rate_before

    def test_non_tty_output_is_throttled_newlines(self):
        reporter, clock, stream = self.make(total=100, min_interval_s=1.0)
        for _ in range(10):
            clock.advance(0.05)
            reporter.spec_finished()
        rendered = stream.getvalue()
        assert rendered.count("\n") <= 2
        assert "\r" not in rendered

    def test_tty_redraws_in_place(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        clock = FakeClock()
        stream = Tty()
        reporter = ProgressReporter(2, stream=stream, clock=clock)
        reporter.spec_finished()
        clock.advance(1.0)
        reporter.spec_finished()
        reporter.close()
        assert stream.getvalue().count("\r\x1b[2K") == 3
        assert stream.getvalue().endswith("\n")

    def test_close_always_renders_final_state(self):
        reporter, _, stream = self.make(total=2, min_interval_s=1000.0)
        reporter.spec_finished()
        reporter.spec_finished()
        reporter.close()
        assert "sweep 2/2 done" in stream.getvalue()


# ---------------------------------------------------------------------------
# campaign manifest
# ---------------------------------------------------------------------------


class TestManifest:
    def test_manifest_matches_retry_and_quarantine_ground_truth(
        self, tmp_path, monkeypatch
    ):
        specs = [micro_spec(seed=seed) for seed in (11, 12, 13)]
        flaky, poisoned, healthy = specs
        plan = {"faults": [
            # Transient: fails once, succeeds on retry.
            {"match": flaky.content_hash[:12], "kind": "raise",
             "attempts": [1]},
            # Permanent: exhausts attempts, lands in quarantine.
            {"match": poisoned.content_hash[:12], "kind": "raise"},
        ]}
        monkeypatch.setenv(CHAOS_ENV, json.dumps(plan))
        runner = SweepRunner(
            jobs=2,
            store=ResultStore(tmp_path / "s.jsonl"),
            verbose=False,
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            on_error="quarantine",
            quarantine=tmp_path / "q.jsonl",
            telemetry=tmp_path / "events.jsonl",
        )
        runner.run(specs)
        manifest = runner.build_manifest()

        assert manifest["manifest_version"] == 1
        # Both the flaky and the poisoned spec re-attempted: retried == 2.
        assert manifest["counts"] == {
            "specs": 3, "executed": 2, "cached": 0, "failed": 1,
            "retried": 2, "quarantined": 1,
        }
        assert manifest["quarantined"] == [poisoned.content_hash]
        assert manifest["specs"][flaky.content_hash]["attempts"] == 2
        assert manifest["specs"][flaky.content_hash]["attempt_statuses"] == [
            "failed", "ok",
        ]
        assert manifest["specs"][poisoned.content_hash]["status"] == "failed"
        assert manifest["specs"][poisoned.content_hash]["error"]
        assert manifest["specs"][healthy.content_hash]["attempts"] == 1
        assert manifest["jobs"] == 2
        assert manifest["environment"]["python"]

        # The campaign-end event agrees with the manifest.
        events, _ = read_events(tmp_path / "events.jsonl")
        (end,) = [e for e in events if e["kind"] == "campaign-end"]
        assert end["retried"] == 2
        assert end["quarantined"] == 1
        assert end["executed"] == 2

    def test_cached_specs_counted_as_cached(self, tmp_path):
        spec = micro_spec(seed=21)
        store = ResultStore(tmp_path / "s.jsonl")
        SweepRunner(store=store, verbose=False).run([spec])
        rerun = SweepRunner(store=store, resume=True, verbose=False)
        rerun.run([spec])
        manifest = rerun.build_manifest()
        assert manifest["counts"]["cached"] == 1
        assert manifest["counts"]["executed"] == 0
        assert manifest["specs"][spec.content_hash]["cached"] is True

    def test_default_path_sits_next_to_store(self):
        assert default_manifest_path("campaign.jsonl") == Path(
            "campaign.manifest.json"
        )

    def test_build_manifest_is_json_serializable(self):
        spec = micro_spec()
        manifest = build_manifest(
            campaign="c1",
            started_at=1000.0,
            ended_at=1010.0,
            specs={spec.content_hash: spec},
            outcomes={},
            cached_hashes={spec.content_hash},
            quarantined_hashes=set(),
            jobs=1,
        )
        json.dumps(manifest)
        assert manifest["elapsed_s"] == pytest.approx(10.0)


# ---------------------------------------------------------------------------
# trace analyzer
# ---------------------------------------------------------------------------


class TestTraceAnalyzer:
    def synthetic_events(self):
        events = [
            make_event("campaign-start", campaign="c", total_specs=3, jobs=2),
            make_event(
                "span", engine="negotiator", phase="matching", wall_s=0.3,
                sim_ns=1000,
            ),
            make_event(
                "span", engine="negotiator", phase="drain", wall_s=0.1,
                sim_ns=1000,
            ),
            make_event(
                "counter", engine="negotiator", name="grants", delta=5,
                sim_ns=1000,
            ),
            make_event(
                "counter", engine="negotiator", name="grants", delta=3,
                sim_ns=2000,
            ),
        ]
        for value in (10, 20, 30, 40):
            events.append(make_event(
                "gauge", engine="negotiator", name="queued_bytes",
                value=value, sim_ns=value,
            ))
        events += [
            make_event(
                "spec-end", spec="aa", label="slow", status="ok",
                attempts=2, elapsed_s=2.0, cached=False,
            ),
            make_event(
                "spec-end", spec="bb", label="fast", status="ok",
                attempts=1, elapsed_s=0.5, cached=False,
            ),
            make_event(
                "spec-end", spec="cc", label="hit", status="cached",
                attempts=0, elapsed_s=0.0, cached=True,
            ),
            make_event("heartbeat", spec="aa", attempt=1, wall_s=0.5,
                       rss_bytes=1000),
            make_event(
                "campaign-end", campaign="c", executed=2, cached=1,
                failed=0, retried=1, quarantined=0, elapsed_s=2.5,
            ),
        ]
        for event in events:
            assert validate_event(event) == [], event
        return events

    def test_analysis_math(self):
        analysis = analyze(self.synthetic_events(), top=5)
        shares = analysis["phase_time_shares"]["negotiator"]
        assert shares["matching"]["share"] == pytest.approx(0.75)
        assert shares["drain"]["share"] == pytest.approx(0.25)
        assert list(shares) == ["matching", "drain"]  # sorted by time
        assert analysis["counters"]["negotiator"]["grants"] == 8
        slowest = analysis["slowest_specs"]
        assert [s["spec"] for s in slowest] == ["aa", "bb"]  # cached excluded
        assert analysis["retry_histogram"] == {"1": 1, "2": 1}
        depth = analysis["queue_depth"]["negotiator"]
        assert depth["samples"] == 4
        assert depth["max"] == 40
        assert depth["p50"] == 20
        assert analysis["campaign"]["retried"] == 1
        assert analysis["heartbeats"]["count"] == 1
        assert analysis["heartbeats"]["max_rss_bytes"] == 1000

    def test_top_limits_slowest_specs(self):
        analysis = analyze(self.synthetic_events(), top=1)
        assert [s["spec"] for s in analysis["slowest_specs"]] == ["aa"]

    def test_percentile_of_empty_series_is_none(self):
        """Satellite: an empty gauge series must not crash the analyzer."""
        from repro.telemetry.trace import _percentile

        assert _percentile([], 0.50) is None
        assert _percentile([], 0.99) is None
        assert _percentile([5.0], 0.50) == 5.0

    def test_format_trace_renders_missing_depth_stats_as_dash(self):
        """A truncated JSONL can leave percentile stats absent; the text
        renderer shows '-' instead of raising on the None."""
        from repro.telemetry.trace import format_trace

        analysis = analyze([], top=5)
        analysis["queue_depth"]["negotiator"] = {
            "samples": 0, "p50": None, "p90": None, "p99": None, "max": None,
        }
        text = format_trace(analysis)
        assert "queue depth (negotiator): p50=- p90=- p99=- max=- " in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestTelemetryCli:
    def run_main(self, *argv, capsys=None):
        from repro.cli import main

        code = main(list(argv))
        out, err = capsys.readouterr()
        return code, out, err

    def sweep_args(self, tmp_path, *extra):
        return (
            "sweep", "--scale", "micro", "--scenario", "poisson",
            "--load", "0.2", "--seed", "5", "--duration-ms", "0.08",
            "--store", str(tmp_path / "s.jsonl"), *extra,
        )

    def test_json_stdout_stays_pure_with_verbose_logging(
        self, tmp_path, capsys
    ):
        """Satellite: runner logs go to stderr, so --json stdout is
        machine-parseable even with per-spec logging enabled."""
        code, out, err = self.run_main(
            *self.sweep_args(tmp_path, "--json", "--no-progress"),
            capsys=capsys,
        )
        assert code == 0
        payload = json.loads(out)  # would raise if a log line leaked
        assert payload["runs"]
        assert "ran in" in err  # the verbose per-spec log, on stderr
        assert "1 executed" in err

    def test_sweep_telemetry_progress_trace_round_trip(
        self, tmp_path, capsys
    ):
        events_path = tmp_path / "events.jsonl"
        code, out, err = self.run_main(
            *self.sweep_args(
                tmp_path, "--telemetry", str(events_path), "--progress",
            ),
            capsys=capsys,
        )
        assert code == 0
        assert "sweep 1/1 done" in err
        assert "manifest" in out or "manifest" in err
        manifest = json.loads(
            default_manifest_path(tmp_path / "s.jsonl").read_text()
        )
        assert manifest["counts"]["executed"] == 1

        code, out, _ = self.run_main(
            "trace", str(events_path), "--validate", capsys=capsys
        )
        assert code == 0
        assert "schema valid" in out

        code, out, _ = self.run_main(
            "trace", str(events_path), "--json", capsys=capsys
        )
        assert code == 0
        analysis = json.loads(out)
        assert analysis["phase_time_shares"]["negotiator"]
        assert analysis["retry_histogram"] == {"1": 1}
        assert analysis["torn_lines"] == 0

        code, out, _ = self.run_main(
            "trace", str(events_path), capsys=capsys
        )
        assert code == 0
        assert "phase time (negotiator)" in out

    def test_trace_validate_flags_bad_events(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "kind": "mystery", "ts": 0}\n')
        code, _, err = self.run_main(
            "trace", str(path), "--validate", capsys=capsys
        )
        assert code == 1
        assert "unknown kind" in err

    def test_trace_missing_file(self, tmp_path, capsys):
        code, _, err = self.run_main(
            "trace", str(tmp_path / "nope.jsonl"), capsys=capsys
        )
        assert code == 2
        assert "no such telemetry" in err

    def test_bad_cadence_rejected(self, tmp_path, capsys):
        code, _, err = self.run_main(
            *self.sweep_args(tmp_path, "--telemetry-cadence-us", "0"),
            capsys=capsys,
        )
        assert code == 2
        assert "telemetry-cadence" in err


# ---------------------------------------------------------------------------
# EpochStatsRecorder capacity modes
# ---------------------------------------------------------------------------


def stats(epoch: int) -> EpochStats:
    return EpochStats(
        epoch=epoch, active_pairs=1, requests_sent=1, matches=1,
        matched_pairs=1, queued_bytes=epoch,
    )


class TestRecorderCapacity:
    def test_unbounded_by_default(self):
        recorder = EpochStatsRecorder()
        for epoch in range(1000):
            recorder.record(stats(epoch))
        assert len(recorder) == 1000
        assert recorder.dropped == 0

    def test_ring_keeps_last_capacity_epochs_at_scale(self):
        recorder = EpochStatsRecorder(capacity=1024, mode="ring")
        total = 150_000
        for epoch in range(total):
            recorder.record(stats(epoch))
        assert len(recorder) == 1024
        assert recorder.seen == total
        assert recorder.dropped == total - 1024
        epochs = [entry.epoch for entry in recorder.stats]
        assert epochs == list(range(total - 1024, total))

    def test_decimate_spans_whole_run_at_scale(self):
        recorder = EpochStatsRecorder(capacity=1024, mode="decimate")
        total = 150_000
        for epoch in range(total):
            recorder.record(stats(epoch))
        assert len(recorder) <= 1024
        assert recorder.seen == total
        assert len(recorder) + recorder.dropped == total
        epochs = [entry.epoch for entry in recorder.stats]
        # Uniform thinning: first epoch retained, stride exact, whole run
        # covered.
        assert epochs[0] == 0
        stride = recorder.stride
        assert stride >= total // 1024
        assert all(e % stride == 0 for e in epochs)
        assert epochs == sorted(epochs)
        assert epochs[-1] >= total - stride

    def test_summary_still_works_when_capped(self):
        recorder = EpochStatsRecorder(capacity=16, mode="ring")
        for epoch in range(100):
            recorder.record(stats(epoch))
        assert recorder.summary()["epochs"] == 16.0

    def test_bad_configuration_rejected(self):
        with pytest.raises(ValueError):
            EpochStatsRecorder(capacity=1)
        with pytest.raises(ValueError):
            EpochStatsRecorder(capacity=8, mode="sample")
