"""Tests for the extended traffic patterns (workloads/patterns.py)."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.workloads.generators import poisson_workload
from repro.workloads.patterns import (
    bursty_workload,
    hotspot_workload,
    permutation_workload,
    ring_allreduce_workload,
    shuffle_workload,
)
from repro.workloads.traces import hadoop

N_TORS = 16
HOST_GBPS = 200.0
DURATION = 2_000_000.0


def _pair_counts(flows) -> Counter:
    return Counter((f.src, f.dst) for f in flows)


class TestHotspot:
    def test_hot_set_carries_most_traffic(self):
        flows = hotspot_workload(
            hadoop(), 0.5, N_TORS, HOST_GBPS, DURATION, random.Random(1),
            hot_fraction=0.25, hot_weight=0.9,
        )
        assert flows
        # Recover the hot set the generator drew: ToRs involved in the
        # top pair counts.  With weight 0.9 over 4 hot ToRs, hot-pair flows
        # dominate: check that some small ToR subset sources >= 70%.
        src_counts = Counter(f.src for f in flows)
        top4 = {t for t, _ in src_counts.most_common(4)}
        hot_flows = sum(1 for f in flows if f.src in top4 and f.dst in top4)
        assert hot_flows / len(flows) > 0.7

    def test_deterministic_for_seed(self):
        make = lambda: hotspot_workload(
            hadoop(), 0.3, N_TORS, HOST_GBPS, DURATION, random.Random(5)
        )
        assert [(f.src, f.dst, f.arrival_ns) for f in make()] == [
            (f.src, f.dst, f.arrival_ns) for f in make()
        ]

    def test_valid_flows(self):
        flows = hotspot_workload(
            hadoop(), 0.5, N_TORS, HOST_GBPS, DURATION, random.Random(2)
        )
        assert all(f.src != f.dst for f in flows)
        assert all(0 <= f.src < N_TORS and 0 <= f.dst < N_TORS for f in flows)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError, match="hot_fraction"):
            hotspot_workload(
                hadoop(), 0.5, N_TORS, HOST_GBPS, DURATION,
                random.Random(1), hot_fraction=0.0,
            )
        with pytest.raises(ValueError, match="hot_weight"):
            hotspot_workload(
                hadoop(), 0.5, N_TORS, HOST_GBPS, DURATION,
                random.Random(1), hot_weight=1.5,
            )


class TestPermutation:
    def test_each_source_has_one_destination(self):
        flows = permutation_workload(
            hadoop(), 0.5, N_TORS, HOST_GBPS, DURATION, random.Random(3)
        )
        dsts_per_src: dict[int, set] = {}
        for f in flows:
            dsts_per_src.setdefault(f.src, set()).add(f.dst)
        assert all(len(d) == 1 for d in dsts_per_src.values())

    def test_no_fixed_points_and_full_cycle(self):
        flows = permutation_workload(
            hadoop(), 2.0, N_TORS, HOST_GBPS, DURATION, random.Random(4)
        )
        mapping = {f.src: f.dst for f in flows}
        assert all(src != dst for src, dst in mapping.items())
        # A single cycle visits every ToR once.
        if len(mapping) == N_TORS:
            seen, node = set(), next(iter(mapping))
            while node not in seen:
                seen.add(node)
                node = mapping[node]
            assert len(seen) == N_TORS


class TestBursty:
    def test_same_average_volume_as_poisson(self):
        """The MMPP modulation preserves the long-run offered load."""
        rng = random.Random(11)
        bursty = bursty_workload(
            hadoop(), 0.5, N_TORS, HOST_GBPS, 20_000_000.0, rng,
            mean_on_ns=100_000.0, mean_off_ns=100_000.0,
        )
        plain = poisson_workload(
            hadoop(), 0.5, N_TORS, HOST_GBPS, 20_000_000.0, random.Random(11)
        )
        volume = sum(f.size_bytes for f in bursty)
        reference = sum(f.size_bytes for f in plain)
        assert volume == pytest.approx(reference, rel=0.35)

    def test_arrivals_within_duration_and_ordered_by_construction(self):
        flows = bursty_workload(
            hadoop(), 0.5, N_TORS, HOST_GBPS, DURATION, random.Random(6)
        )
        assert all(0 <= f.arrival_ns < DURATION for f in flows)
        arrivals = [f.arrival_ns for f in flows]
        assert arrivals == sorted(arrivals)

    def test_zero_off_time_degenerates_to_poisson_rate(self):
        flows = bursty_workload(
            hadoop(), 0.5, N_TORS, HOST_GBPS, DURATION, random.Random(7),
            mean_on_ns=50_000.0, mean_off_ns=0.0,
        )
        assert flows


class TestRingAllreduce:
    def test_phase_structure(self):
        flows = ring_allreduce_workload(8, data_bytes=8_000, at_ns=0.0)
        # 2(N-1) phases x N flows.
        assert len(flows) == 2 * 7 * 8
        assert all(f.dst == (f.src + 1) % 8 for f in flows)
        assert all(f.size_bytes == 1000 for f in flows)
        phases = sorted({f.arrival_ns for f in flows})
        assert len(phases) == 14
        gaps = {round(b - a, 6) for a, b in zip(phases, phases[1:])}
        assert len(gaps) == 1  # equally paced

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="ring"):
            ring_allreduce_workload(1, data_bytes=100)
        with pytest.raises(ValueError, match="data_bytes"):
            ring_allreduce_workload(4, data_bytes=0)


class TestShuffle:
    def test_rounds_and_tags(self):
        flows = shuffle_workload(
            6, chunk_bytes=500, rounds=3, at_ns=100.0, round_gap_ns=50.0
        )
        assert len(flows) == 3 * 6 * 5
        assert {f.tag for f in flows} == {"shuffle"}
        assert sorted({f.arrival_ns for f in flows}) == [100.0, 150.0, 200.0]
        fids = [f.fid for f in flows]
        assert len(set(fids)) == len(fids)

    def test_single_round_matches_alltoall_shape(self):
        flows = shuffle_workload(4, chunk_bytes=100)
        assert _pair_counts(flows) == Counter(
            {(s, d): 1 for s in range(4) for d in range(4) if s != d}
        )
