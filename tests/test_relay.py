"""Tests for traffic-aware selective relay (appendix A.2.2, Table 3)."""

import random

import pytest

from repro import (
    BandwidthRecorder,
    Flow,
    NegotiaToRSimulator,
    ParallelNetwork,
    SimConfig,
    ThinClos,
    poisson_workload,
)
from repro.core.relay import RelayPolicy, SelectiveRelaySimulator
from repro.sim.config import KB
from repro.workloads.traces import hadoop

N, S, W = 16, 4, 4


def config(**overrides):
    defaults = dict(
        num_tors=N, ports_per_tor=S, uplink_gbps=100.0,
        host_aggregate_gbps=S * 100.0 / 2.0,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


def make_sim(flows, policy=None, **kwargs):
    cfg = config()
    return SelectiveRelaySimulator(
        cfg, ThinClos(N, S, W), flows, relay_policy=policy, **kwargs
    )


def elephant(fid=0, src=1, dst=6, size=500 * KB, arrival=-1.0):
    return Flow(fid=fid, src=src, dst=dst, size_bytes=size, arrival_ns=arrival)


def mouse(fid=100, src=1, dst=6, size=500, arrival=-1.0):
    return Flow(fid=fid, src=src, dst=dst, size_bytes=size, arrival_ns=arrival)


class TestPolicy:
    def test_defaults_validated(self):
        with pytest.raises(ValueError):
            RelayPolicy(relay_threshold_bytes=0)
        with pytest.raises(ValueError):
            RelayPolicy(high_volume_bytes=-1)
        with pytest.raises(ValueError):
            RelayPolicy(max_candidates=0)
        with pytest.raises(ValueError):
            RelayPolicy(grant_budget_phases=0)

    def test_requires_thinclos(self):
        with pytest.raises(ValueError, match="thin-clos"):
            SelectiveRelaySimulator(config(), ParallelNetwork(N, S), [])


class TestRelayMechanics:
    def test_elephant_bytes_are_relayed(self):
        recorder = BandwidthRecorder(bin_ns=10_000.0)
        sim = make_sim([elephant()], bandwidth_recorder=recorder)
        sim.run(300_000)
        relayed = sum(
            recorder.total_bytes(key)
            for key in recorder.keys()
            if key[0] == "relay"
        )
        assert relayed > 0
        assert sim.relay_stats["requests"] > 0
        assert sim.relay_stats["grants"] > 0

    def test_mice_are_never_relayed(self):
        """Only lowest-band data is eligible; a mouse stays direct."""
        recorder = BandwidthRecorder(bin_ns=10_000.0)
        sim = make_sim([mouse()], bandwidth_recorder=recorder)
        sim.run_until_complete(max_ns=1_000_000)
        relayed = [key for key in recorder.keys() if key[0] == "relay"]
        assert relayed == []

    def test_relayed_flow_still_completes_exactly_once(self):
        flows = [elephant(size=300 * KB)]
        sim = make_sim(flows)
        assert sim.run_until_complete(max_ns=20_000_000)
        assert flows[0].remaining_bytes == 0
        assert sim.tracker.delivered_bytes == 300 * KB

    def test_byte_conservation_with_relay(self):
        cfg = config()
        flows = poisson_workload(
            hadoop(), 0.8, N, cfg.host_aggregate_gbps, 300_000,
            random.Random(17),
        )
        sim = SelectiveRelaySimulator(cfg, ThinClos(N, S, W), flows)
        sim.run(300_000)
        injected = sum(f.size_bytes for f in flows)
        left = sum(f.remaining_bytes for f in flows)
        assert sim.tracker.delivered_bytes + left == injected

    def test_small_backlog_requests_no_relay(self):
        policy = RelayPolicy(relay_threshold_bytes=100 * KB)
        sim = make_sim([elephant(size=50 * KB)], policy=policy)
        sim.run(100_000)
        assert sim.relay_stats["requests"] == 0

    def test_direct_traffic_keeps_port_priority(self):
        """A relay assignment never displaces an accepted direct match."""
        # Saturate pair (1, 6); its port must stay fully direct.
        flows = [elephant(fid=0), elephant(fid=1, src=5, dst=2)]
        sim = make_sim(flows)
        sim.run(200_000)
        # No crash and conservation hold; the invariant is structural
        # (busy ports are skipped), checked via the engine's validator.
        injected = sum(f.size_bytes for f in flows)
        left = sum(f.remaining_bytes for f in flows)
        assert sim.tracker.delivered_bytes + left == injected


class TestTable3Conclusion:
    def test_relay_changes_goodput_only_marginally(self):
        """Appendix A.2.2: goodput is barely improved by selective relay."""
        cfg = config()
        goodputs = {}
        for enabled in (False, True):
            flows = poisson_workload(
                hadoop(), 0.75, N, cfg.host_aggregate_gbps, 600_000,
                random.Random(21),
            )
            cls = SelectiveRelaySimulator if enabled else NegotiaToRSimulator
            sim = cls(cfg, ThinClos(N, S, W), flows)
            sim.run(600_000)
            goodputs[enabled] = sim.summary().goodput_normalized
        assert goodputs[True] == pytest.approx(goodputs[False], abs=0.08)
