"""Tests for the topology contract validators."""

import pytest

from repro.topology.base import FlatTopology
from repro.topology.parallel import ParallelNetwork
from repro.topology.thinclos import ThinClos
from repro.topology.validation import (
    TopologyContractError,
    check_assignment_inverse,
    check_optical_conflict_freedom,
    check_predefined_conflict_freedom,
    check_predefined_coverage,
    check_reachability_symmetry,
    validate_topology,
)


class TestBuiltinsSatisfyContracts:
    @pytest.mark.parametrize(
        "topology",
        [
            ParallelNetwork(8, 2),
            ParallelNetwork(12, 5),
            ParallelNetwork(16, 4, rotate_per_epoch=False),
            ThinClos(8, 2, 4),
            ThinClos(16, 4, 4),
        ],
        ids=["par8x2", "par12x5", "par16x4-static", "thin8", "thin16"],
    )
    def test_validate_topology_passes(self, topology):
        validate_topology(topology, epochs=4)


class _BrokenSchedule(ParallelNetwork):
    """A topology whose slot-0 schedule collides on a receiver."""

    def predefined_peer(self, tor, port, slot, epoch=0):
        if slot == 0 and port == 0:
            return 1 if tor != 1 else None  # everyone hits ToR 1
        return super().predefined_peer(tor, port, slot, epoch)


class _MissingPair(ParallelNetwork):
    """A topology that never connects pair (0, 1)."""

    def predefined_peer(self, tor, port, slot, epoch=0):
        peer = super().predefined_peer(tor, port, slot, epoch)
        if tor == 0 and peer == 1:
            return None
        return peer


class _AsymmetricReach(ThinClos):
    """Reachability views that disagree between TX and RX."""

    def reachable_srcs(self, tor, port):
        return ()


class TestViolationsAreCaught:
    def test_receiver_collision_detected(self):
        with pytest.raises(TopologyContractError, match="collide|twice"):
            broken = _BrokenSchedule(8, 2)
            check_predefined_conflict_freedom(broken)
            check_predefined_coverage(broken)

    def test_missing_pair_detected(self):
        with pytest.raises(TopologyContractError, match="covers"):
            check_predefined_coverage(_MissingPair(8, 2))

    def test_assignment_mismatch_detected(self):
        with pytest.raises(TopologyContractError):
            check_assignment_inverse(_MissingPair(8, 2))

    def test_reachability_asymmetry_detected(self):
        with pytest.raises(TopologyContractError, match="does"):
            check_reachability_symmetry(_AsymmetricReach(8, 2, 4))

    def test_optical_check_passes_builtins(self):
        check_optical_conflict_freedom(ParallelNetwork(8, 2))
        check_optical_conflict_freedom(ThinClos(16, 4, 4))


class TestCustomTopologyWorkflow:
    def test_minimal_custom_topology_validates(self):
        """A user-defined fabric built on FlatTopology passes the contracts
        when it delegates to a built-in construction."""

        class Renamed(ParallelNetwork):
            @property
            def name(self):
                return "my-fabric"

        topo = Renamed(8, 2)
        assert topo.name == "my-fabric"
        validate_topology(topo)

    def test_all_pairs_iterates_ordered_pairs(self):
        topo = ParallelNetwork(4, 2)
        pairs = list(topo.all_pairs())
        assert len(pairs) == 12
        assert (0, 0) not in pairs
        assert isinstance(topo, FlatTopology)
