"""Tests for the engine perf harness (repro.perf) and the bench CLI."""

import json

import pytest

from repro.cli import main
from repro.perf import (
    FABRICS,
    SCENARIOS,
    BenchFile,
    PerfResult,
    Stopwatch,
    fabric_config,
    format_results,
    run_scenario,
)


class TestScenarios:
    def test_registry_covers_the_three_regimes(self):
        assert set(SCENARIOS) == {"alltoall", "incast", "sparse"}
        assert (64, 8) in FABRICS

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("nope", 16, 4)

    def test_alltoall_builds_one_flow_per_pair(self):
        flows = SCENARIOS["alltoall"].build_flows(8, 10, 2940.0)
        assert len(flows) == 8 * 7
        assert all(f.arrival_ns == 0.0 for f in flows)

    def test_sparse_flows_are_time_ordered_and_in_range(self):
        flows = SCENARIOS["sparse"].build_flows(16, 5000, 2940.0)
        assert flows, "sparse builder produced no flows"
        times = [f.arrival_ns for f in flows]
        assert times == sorted(times)
        assert all(f.src != f.dst for f in flows)
        assert times[-1] < 5000 * 2940.0

    def test_epochs_for_interpolates_unlisted_fabrics(self):
        scenario = SCENARIOS["alltoall"]
        assert scenario.epochs_for(64) == scenario.epochs_by_tors[64]
        assert scenario.epochs_for(60) == scenario.epochs_by_tors[64]

    def test_fabric_config_keeps_2x_speedup(self):
        config = fabric_config(16, 4)
        assert config.speedup == pytest.approx(2.0)


class TestRunScenario:
    def test_smoke_run_reports_consistent_counters(self):
        result = run_scenario("sparse", 8, 2, epochs=1500)
        assert result.epochs == 1500
        assert result.stepped_epochs + result.fast_forwarded_epochs == 1500
        assert result.fast_forwarded_epochs > 0
        assert result.delivered_bytes > 0
        assert result.epochs_per_sec > 0
        assert result.key == "sparse/t8p2"

    def test_fast_forward_flag_respected(self):
        result = run_scenario("sparse", 8, 2, epochs=800, fast_forward=False)
        assert result.fast_forwarded_epochs == 0
        assert result.stepped_epochs == 800


class TestBenchFile:
    def result(self, eps, scenario="sparse"):
        return PerfResult(
            scenario=scenario,
            num_tors=8,
            ports_per_tor=2,
            epochs=100,
            stepped_epochs=100,
            fast_forwarded_epochs=0,
            wall_s=1.0,
            epochs_per_sec=eps,
            num_flows=1,
            completed_flows=1,
            delivered_bytes=10,
        )

    def test_roundtrip_and_speedup(self, tmp_path):
        path = str(tmp_path / "bench.json")
        bench = BenchFile.load(path)  # missing file -> empty
        bench.record_baseline(self.result(100.0))
        bench.record_current(self.result(250.0))
        bench.write()

        reloaded = BenchFile.load(path)
        assert reloaded.baseline_eps("sparse/t8p2") == 100.0
        assert reloaded.entries["sparse/t8p2"]["speedup"] == 2.5
        with open(path) as handle:
            assert json.load(handle)["schema"] == 1

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99}')
        with pytest.raises(ValueError, match="unsupported schema"):
            BenchFile.load(str(path))

    def test_format_results_shows_speedup_column(self, tmp_path):
        bench = BenchFile(path=str(tmp_path / "b.json"))
        bench.record_baseline(self.result(100.0))
        text = format_results([self.result(200.0)], bench)
        assert "2.00x" in text
        assert "sparse" in text


class TestBenchCli:
    def test_bench_command_runs_and_records(self, tmp_path, capsys):
        bench_file = str(tmp_path / "BENCH.json")
        code = main([
            "bench",
            "--scenario", "sparse",
            "--fabric", "8x2",
            "--bench-file", bench_file,
            "--update-baseline",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sparse" in out and "epochs/s" in out
        entries = BenchFile.load(bench_file).entries
        assert "sparse/t8p2" in entries

        # A second run with --check against its own baseline passes.
        code = main([
            "bench",
            "--scenario", "sparse",
            "--fabric", "8x2",
            "--bench-file", bench_file,
            "--check", "0.05",
        ])
        assert code == 0

    def test_bench_check_fails_on_regression(self, tmp_path, capsys):
        bench_file = str(tmp_path / "BENCH.json")
        bench = BenchFile.load(bench_file)
        bench.entries["sparse/t8p2"] = {
            "baseline": {"epochs_per_sec": 1e12}
        }
        bench.write()
        code = main([
            "bench",
            "--scenario", "sparse",
            "--fabric", "8x2",
            "--bench-file", bench_file,
            "--check", "1.0",
        ])
        assert code == 1
        assert "perf regression" in capsys.readouterr().err

    def test_bench_rejects_bad_fabric_and_scenario(self, capsys):
        assert main(["bench", "--fabric", "wat"]) == 2
        assert main(["bench", "--scenario", "nope", "--fabric", "8x2"]) == 2

    def test_check_without_any_baseline_fails(self, tmp_path, capsys):
        # A missing/empty bench file must not let the CI gate pass silently.
        code = main([
            "bench",
            "--scenario", "sparse",
            "--fabric", "8x2",
            "--bench-file", str(tmp_path / "missing.json"),
            "--check", "0.5",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "no baseline for sparse/t8p2" in err
        assert "no comparable baselines" in err

    def test_update_baseline_does_not_blind_the_check(self, tmp_path, capsys):
        # --update-baseline combined with --check must compare against the
        # baseline that existed before this run, not the one just written.
        bench_file = str(tmp_path / "BENCH.json")
        bench = BenchFile.load(bench_file)
        bench.entries["sparse/t8p2"] = {"baseline": {"epochs_per_sec": 1e12}}
        bench.write()
        code = main([
            "bench",
            "--scenario", "sparse",
            "--fabric", "8x2",
            "--bench-file", bench_file,
            "--update-baseline",
            "--check", "1.0",
        ])
        assert code == 1
        assert "perf regression" in capsys.readouterr().err
