"""Shared fixtures: tiny fabrics that keep the test suite fast.

The paper's scale is 128 ToRs x 8 ports; tests run the same code on 8-16 ToR
fabrics (all structural invariants are scale-free) and keep the 2x uplink
speedup by shrinking the host aggregate bandwidth accordingly.
"""

from __future__ import annotations

import random

import pytest

from repro import ParallelNetwork, SimConfig, ThinClos


def tiny_config(num_tors: int = 8, ports: int = 2, **overrides) -> SimConfig:
    """A small SimConfig preserving the paper's 2x uplink speedup."""
    defaults = dict(
        num_tors=num_tors,
        ports_per_tor=ports,
        uplink_gbps=100.0,
        host_aggregate_gbps=ports * 100.0 / 2.0,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


@pytest.fixture
def config8x2() -> SimConfig:
    """8 ToRs x 2 ports, 2x speedup."""
    return tiny_config(8, 2)


@pytest.fixture
def config16x4() -> SimConfig:
    """16 ToRs x 4 ports, 2x speedup."""
    return tiny_config(16, 4)


@pytest.fixture
def parallel8x2() -> ParallelNetwork:
    """Parallel network matching config8x2."""
    return ParallelNetwork(8, 2)


@pytest.fixture
def thinclos8x2() -> ThinClos:
    """Thin-clos matching config8x2 (8 = 2 ports x 4-port AWGRs)."""
    return ThinClos(8, 2, 4)


@pytest.fixture
def parallel16x4() -> ParallelNetwork:
    """Parallel network matching config16x4."""
    return ParallelNetwork(16, 4)


@pytest.fixture
def thinclos16x4() -> ThinClos:
    """Thin-clos matching config16x4 (16 = 4 ports x 4-port AWGRs)."""
    return ThinClos(16, 4, 4)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG."""
    return random.Random(0xC0FFEE)
