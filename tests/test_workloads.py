"""Tests for workload generation (sections 4.1, 4.2, 4.4)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.flows import Flow
from repro.workloads.distributions import EmpiricalCDF, FixedSize
from repro.workloads.generators import (
    merge_workloads,
    network_arrival_rate_per_ns,
    poisson_workload,
    single_pair_stream,
    uniform_pair,
)
from repro.workloads.incast import (
    all_to_all_workload,
    incast_finish_time_ns,
    incast_workload,
    mixed_incast_workload,
)
from repro.workloads.traces import by_name, google, hadoop, websearch


class TestEmpiricalCDF:
    def simple(self):
        return EmpiricalCDF([(100, 0.0), (1000, 0.5), (10000, 1.0)], name="t")

    def test_quantile_endpoints(self):
        cdf = self.simple()
        assert cdf.quantile(0.0) == pytest.approx(100)
        assert cdf.quantile(1.0) == pytest.approx(10000)

    def test_quantile_log_interpolation(self):
        cdf = self.simple()
        assert cdf.quantile(0.25) == pytest.approx(math.sqrt(100 * 1000))

    def test_cdf_inverts_quantile(self):
        cdf = self.simple()
        for u in (0.1, 0.3, 0.5, 0.9):
            assert cdf.cdf(cdf.quantile(u)) == pytest.approx(u)

    def test_samples_within_range(self):
        cdf = self.simple()
        rng = random.Random(0)
        for _ in range(200):
            assert 100 <= cdf.sample(rng) <= 10000

    def test_mean_matches_sampling(self):
        cdf = self.simple()
        rng = random.Random(0)
        empirical = sum(cdf.sample(rng) for _ in range(40000)) / 40000
        assert empirical == pytest.approx(cdf.mean(), rel=0.03)

    def test_bytes_fraction_above(self):
        cdf = self.simple()
        assert cdf.bytes_fraction_above(0) == pytest.approx(1.0)
        assert cdf.bytes_fraction_above(10000) == pytest.approx(0.0)
        assert 0.5 < cdf.bytes_fraction_above(1000) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([(100, 0.0)])
        with pytest.raises(ValueError):
            EmpiricalCDF([(100, 0.1), (200, 1.0)])  # must start at 0
        with pytest.raises(ValueError):
            EmpiricalCDF([(100, 0.0), (200, 0.5)])  # must end at 1
        with pytest.raises(ValueError):
            EmpiricalCDF([(100, 0.0), (50, 1.0)])  # sizes must increase
        with pytest.raises(ValueError):
            EmpiricalCDF([(100, 0.0), (200, 0.0), (300, 1.0)])  # probs strict

    def test_fixed_size(self):
        dist = FixedSize(500)
        assert dist.sample(random.Random(0)) == 500
        assert dist.mean() == 500.0
        with pytest.raises(ValueError):
            FixedSize(0)


class TestTraces:
    def test_hadoop_headline_statistics(self):
        """60% of flows < 1 KB; >80% of bytes from flows > 100 KB (section 4.1)."""
        cdf = hadoop()
        assert cdf.cdf(1000) == pytest.approx(0.60, abs=0.02)
        assert cdf.bytes_fraction_above(100_000) > 0.80

    def test_websearch_headline_statistics(self):
        """More than 80% of flows exceed 10 KB (section 4.4)."""
        cdf = websearch()
        assert cdf.cdf(10_000) < 0.20 + 0.01

    def test_google_headline_statistics(self):
        """More than 80% of flows are below 1 KB (section 4.4)."""
        cdf = google()
        assert cdf.cdf(1000) > 0.80

    def test_relative_weights(self):
        """Websearch is the heavy workload, Google the light one."""
        assert websearch().mean() > hadoop().mean() > google().mean()

    def test_lookup_by_name(self):
        assert by_name("hadoop").name == "hadoop"
        with pytest.raises(ValueError):
            by_name("bing")


class TestLoadModel:
    def test_rate_formula(self):
        # L=1, F=125000 B = 1e6 bits, R*N = 400*4 = 1600 Gbps -> 1600e9/1e6
        # flows/s = 1.6e-3 flows/ns.
        rate = network_arrival_rate_per_ns(1.0, 125_000, 4, 400.0)
        assert rate == pytest.approx(1.6e-3)

    def test_rate_scales_linearly_with_load(self):
        r1 = network_arrival_rate_per_ns(0.5, 1000, 8, 400.0)
        r2 = network_arrival_rate_per_ns(1.0, 1000, 8, 400.0)
        assert r2 == pytest.approx(2 * r1)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            network_arrival_rate_per_ns(0.0, 1000, 8, 400.0)
        with pytest.raises(ValueError):
            network_arrival_rate_per_ns(1.0, 0, 8, 400.0)


class TestPoissonWorkload:
    def test_offered_load_matches_target(self):
        rng = random.Random(42)
        load, duration = 0.6, 10_000_000
        flows = poisson_workload(
            hadoop(), load, num_tors=16, host_aggregate_gbps=400.0,
            duration_ns=duration, rng=rng,
        )
        offered_bits = sum(f.size_bytes for f in flows) * 8
        capacity_bits = 400.0 * 16 * duration
        assert offered_bits / capacity_bits == pytest.approx(load, rel=0.15)

    def test_arrivals_sorted_and_in_range(self):
        flows = poisson_workload(
            FixedSize(1000), 0.5, 8, 400.0, 100_000, random.Random(0)
        )
        times = [f.arrival_ns for f in flows]
        assert times == sorted(times)
        assert all(0 <= t < 100_000 for t in times)

    def test_pairs_are_valid(self):
        flows = poisson_workload(
            FixedSize(1000), 0.5, 8, 400.0, 100_000, random.Random(0)
        )
        assert all(f.src != f.dst for f in flows)
        assert all(0 <= f.src < 8 and 0 <= f.dst < 8 for f in flows)

    def test_fids_unique(self):
        flows = poisson_workload(
            FixedSize(1000), 0.5, 8, 400.0, 100_000, random.Random(0)
        )
        fids = [f.fid for f in flows]
        assert len(set(fids)) == len(fids)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_uniform_pair_never_self(self, seed):
        rng = random.Random(seed)
        src, dst = uniform_pair(8, rng)
        assert src != dst
        assert 0 <= src < 8 and 0 <= dst < 8

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            poisson_workload(FixedSize(10), 1.0, 8, 400.0, 0, random.Random(0))


class TestIncastWorkloads:
    def test_incast_shape(self):
        flows = incast_workload(16, degree=5, dst=3, at_ns=100.0)
        assert len(flows) == 5
        assert all(f.dst == 3 and f.src != 3 for f in flows)
        assert all(f.arrival_ns == 100.0 for f in flows)
        assert len({f.src for f in flows}) == 5
        assert all(f.tag == "incast" for f in flows)

    def test_incast_random_sources(self):
        flows = incast_workload(16, degree=5, dst=3, rng=random.Random(0))
        assert all(f.src != 3 for f in flows)

    def test_incast_degree_bounds(self):
        with pytest.raises(ValueError):
            incast_workload(8, degree=8, dst=0)
        with pytest.raises(ValueError):
            incast_workload(8, degree=0, dst=0)

    def test_finish_time(self):
        flows = incast_workload(8, degree=2, dst=0, at_ns=50.0)
        with pytest.raises(ValueError):
            incast_finish_time_ns(flows, 50.0)  # not finished yet
        for i, f in enumerate(flows):
            f.remaining_bytes = 0
            f.completed_ns = 100.0 + i
        assert incast_finish_time_ns(flows, 50.0) == pytest.approx(51.0)

    def test_all_to_all_covers_every_pair(self):
        flows = all_to_all_workload(6, flow_bytes=100)
        assert len(flows) == 30
        assert {(f.src, f.dst) for f in flows} == {
            (s, d) for s in range(6) for d in range(6) if s != d
        }

    def test_mixed_workload_bandwidth_share(self):
        rng = random.Random(7)
        duration = 20_000_000
        flows = mixed_incast_workload(
            hadoop(), 0.5, 16, 400.0, duration, rng,
            incast_degree=4, incast_bandwidth_fraction=0.02,
        )
        incast_bits = sum(
            f.size_bytes * 8 for f in flows if f.tag == "incast"
        )
        assert incast_bits / (400.0 * 16 * duration) == pytest.approx(
            0.02, rel=0.35
        )
        tags = {f.tag for f in flows}
        assert tags == {"incast", "background"}
        times = [f.arrival_ns for f in flows]
        assert times == sorted(times)

    def test_mixed_workload_fids_unique(self):
        flows = mixed_incast_workload(
            hadoop(), 0.3, 8, 400.0, 2_000_000, random.Random(1),
        )
        fids = [f.fid for f in flows]
        assert len(set(fids)) == len(fids)


class TestStreamsAndMerge:
    def test_single_flow_stream(self):
        flows = single_pair_stream(0, 1, total_bytes=1000)
        assert len(flows) == 1
        assert flows[0].size_bytes == 1000

    def test_chunked_stream(self):
        flows = single_pair_stream(0, 1, total_bytes=2500, chunk_bytes=1000)
        assert [f.size_bytes for f in flows] == [1000, 1000, 500]

    def test_merge_sorts_by_arrival(self):
        import itertools

        fids = itertools.count()
        a = single_pair_stream(0, 1, 100, start_ns=50.0, fids=fids)
        b = single_pair_stream(1, 2, 100, start_ns=10.0, fids=fids)
        merged = merge_workloads(a, b)
        assert [f.arrival_ns for f in merged] == [10.0, 50.0]

    def test_merge_rejects_fid_collision(self):
        a = single_pair_stream(0, 1, 100)
        b = single_pair_stream(1, 2, 100)
        with pytest.raises(ValueError):
            merge_workloads(a, b)

    def test_merge_orders_equal_arrivals_by_fid(self):
        # Equal-arrival flows from different workloads interleave in fid
        # order, whatever the argument order — this ordering feeds spec
        # hashes and golden digests, so it is pinned.
        import itertools

        fids = itertools.count()
        a = single_pair_stream(0, 1, 300, chunk_bytes=100, fids=fids)  # 0,1,2
        b = single_pair_stream(1, 2, 300, chunk_bytes=100, fids=fids)  # 3,4,5
        assert [f.fid for f in merge_workloads(a, b)] == [0, 1, 2, 3, 4, 5]
        assert [f.fid for f in merge_workloads(b, a)] == [0, 1, 2, 3, 4, 5]

    def test_merge_is_a_heap_merge_not_a_sort(self):
        # Unsorted inputs raise instead of being silently re-sorted.
        unsorted = [
            Flow(fid=0, src=0, dst=1, size_bytes=100, arrival_ns=50.0),
            Flow(fid=1, src=1, dst=2, size_bytes=100, arrival_ns=10.0),
        ]
        with pytest.raises(ValueError, match="out of order"):
            merge_workloads(unsorted)
