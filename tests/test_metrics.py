"""Tests for the measurement instruments (Fig 14 / Figs 17-19 observables)."""

import math

import numpy as np
import pytest

from repro.sim.metrics import BandwidthRecorder, MatchRatioRecorder, RunSummary


class TestMatchRatioRecorder:
    def test_ratios_per_epoch(self):
        rec = MatchRatioRecorder()
        rec.record(0, grants=10, accepts=6)
        rec.record(1, grants=8, accepts=8)
        assert list(rec.ratios()) == pytest.approx([0.6, 1.0])
        assert rec.epochs == [0, 1]

    def test_mean_ratio_weights_by_grants(self):
        rec = MatchRatioRecorder()
        rec.record(0, grants=10, accepts=5)
        rec.record(1, grants=30, accepts=30)
        assert rec.mean_ratio() == pytest.approx(35 / 40)

    def test_zero_grant_epoch_is_nan(self):
        rec = MatchRatioRecorder()
        rec.record(0, grants=0, accepts=0)
        assert math.isnan(rec.ratios()[0])

    def test_rejects_more_accepts_than_grants(self):
        with pytest.raises(ValueError):
            MatchRatioRecorder().record(0, grants=1, accepts=2)

    def test_mean_requires_grants(self):
        with pytest.raises(ValueError):
            MatchRatioRecorder().mean_ratio()


class TestBandwidthRecorder:
    def test_series_bins_bytes_into_gbps(self):
        rec = BandwidthRecorder(bin_ns=100.0)
        rec.record(("rx", 1), 1250, 50.0)  # 1250 B in a 100 ns bin = 100 Gbps
        times, gbps = rec.series_gbps(("rx", 1))
        assert list(times) == [0.0]
        assert gbps[0] == pytest.approx(100.0)

    def test_zero_bins_are_explicit(self):
        """The on-off epoch shape of Fig 19 needs explicit zero bins."""
        rec = BandwidthRecorder(bin_ns=100.0)
        rec.record(("pair", 0, 1), 100, 20.0)
        rec.record(("pair", 0, 1), 100, 320.0)
        _times, gbps = rec.series_gbps(("pair", 0, 1))
        assert len(gbps) == 4
        assert gbps[1] == 0.0 and gbps[2] == 0.0

    def test_until_extends_series(self):
        rec = BandwidthRecorder(bin_ns=100.0)
        rec.record(("rx", 0), 10, 0.0)
        times, gbps = rec.series_gbps(("rx", 0), until_ns=500.0)
        assert len(times) == 5
        assert all(v == 0.0 for v in gbps[1:])

    def test_empty_key(self):
        rec = BandwidthRecorder(bin_ns=10.0)
        times, gbps = rec.series_gbps(("nothing",))
        assert len(times) == 0 and len(gbps) == 0

    def test_window_bytes_uses_full_bins(self):
        rec = BandwidthRecorder(bin_ns=100.0)
        rec.record(("rx", 0), 10, 50.0)    # bin 0
        rec.record(("rx", 0), 20, 150.0)   # bin 1
        rec.record(("rx", 0), 40, 250.0)   # bin 2
        assert rec.window_bytes(("rx", 0), 100.0, 300.0) == 60
        assert rec.window_bytes(("rx", 0), 0.0, 300.0) == 70
        assert rec.window_bytes(("rx", 0), 150.0, 300.0) == 40  # bin 1 partial

    def test_total_bytes(self):
        rec = BandwidthRecorder(bin_ns=10.0)
        rec.record(("a",), 5, 0.0)
        rec.record(("a",), 7, 100.0)
        assert rec.total_bytes(("a",)) == 12
        assert rec.total_bytes(("b",)) == 0

    def test_keys_listing(self):
        rec = BandwidthRecorder(bin_ns=10.0)
        rec.record(("a",), 5, 0.0)
        rec.record(("relay", 3), 5, 0.0)
        assert set(rec.keys()) == {("a",), ("relay", 3)}

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            BandwidthRecorder(bin_ns=0.0)
        rec = BandwidthRecorder(bin_ns=10.0)
        with pytest.raises(ValueError):
            rec.record(("a",), -1, 0.0)


class TestRunSummary:
    def test_epoch_conversions(self):
        summary = RunSummary(
            duration_ns=1000.0,
            epoch_ns=100.0,
            num_flows=5,
            num_completed=5,
            goodput_normalized=0.5,
            goodput_gbps=10.0,
            mice_fct_p99_ns=600.0,
            mice_fct_mean_ns=160.0,
        )
        assert summary.mice_fct_p99_epochs == pytest.approx(6.0)
        assert summary.mice_fct_mean_epochs == pytest.approx(1.6)

    def test_conversions_handle_missing_values(self):
        summary = RunSummary(
            duration_ns=1000.0,
            epoch_ns=None,
            num_flows=0,
            num_completed=0,
            goodput_normalized=0.0,
            goodput_gbps=0.0,
            mice_fct_p99_ns=None,
            mice_fct_mean_ns=None,
        )
        assert summary.mice_fct_p99_epochs is None
        assert summary.mice_fct_mean_epochs is None
