"""Tests for the three-epoch pipelined scheduling (section 3.3.1, Fig 4)."""

import random

from repro.core.matching import NegotiaToRMatcher
from repro.core.pipeline import PipelinedScheduler
from repro.topology.parallel import ParallelNetwork


def make_pipeline(n=8, s=2, seed=0):
    matcher = NegotiaToRMatcher(ParallelNetwork(n, s), random.Random(seed))
    return PipelinedScheduler(matcher)


def identity_delivery(grants):
    return grants


class TestPipelineLatency:
    def test_request_yields_matches_two_epochs_later(self):
        pipeline = make_pipeline()
        request = {1: {0: None}}  # ToR 0 requests ToR 1

        matches0, answered0, _ = pipeline.advance(request, identity_delivery)
        assert matches0 == [] and answered0 == 0

        matches1, answered1, _ = pipeline.advance({}, identity_delivery)
        assert matches1 == [] and answered1 == 0  # grant epoch

        matches2, answered2, accepts2 = pipeline.advance({}, identity_delivery)
        # The lone requester was granted both of ToR 1's ports and accepts
        # both: two parallel links for the pair.
        assert {(m.src, m.port, m.dst) for m in matches2} == {(0, 0, 1), (0, 1, 1)}
        assert answered2 == 2
        assert accepts2 == 2

    def test_steady_state_pipeline_overlaps_processes(self):
        """With a persistent request, matches appear every epoch from e+2."""
        pipeline = make_pipeline()
        request = {1: {0: None}}
        outputs = [pipeline.advance(request, identity_delivery)[0] for _ in range(6)]
        assert outputs[0] == [] and outputs[1] == []
        for matches in outputs[2:]:
            assert {(m.src, m.dst) for m in matches} == {(0, 1)}

    def test_lost_grants_cannot_be_accepted(self):
        pipeline = make_pipeline()
        request = {1: {0: None}}
        pipeline.advance(request, identity_delivery)
        # All grants are lost in the grant epoch.
        pipeline.advance({}, lambda grants: {})
        matches, answered, accepts = pipeline.advance({}, identity_delivery)
        assert matches == []
        assert answered == 2  # grants were issued...
        assert accepts == 0  # ...but none answered

    def test_lost_requests_produce_no_grants(self):
        pipeline = make_pipeline()
        # Engine-side loss: delivered_requests arrive empty.
        pipeline.advance({}, identity_delivery)
        _, answered, _ = pipeline.advance({}, identity_delivery)
        assert answered == 0

    def test_match_ratio_pairs_accepts_with_their_grants(self):
        """Accepts at epoch e answer grants issued at e-1, not e."""
        pipeline = make_pipeline(n=4, s=1)
        # Two destinations requested by the same source: one port at the
        # source means one accept against two grants.
        request = {1: {0: None}, 2: {0: None}}
        pipeline.advance(request, identity_delivery)
        pipeline.advance({}, identity_delivery)
        matches, answered, accepts = pipeline.advance({}, identity_delivery)
        assert answered == 2
        assert accepts == 1
        assert len(matches) == 1

    def test_reset_clears_in_flight_state(self):
        pipeline = make_pipeline()
        pipeline.advance({1: {0: None}}, identity_delivery)
        pipeline.reset()
        matches, answered, _ = pipeline.advance({}, identity_delivery)
        assert matches == [] and answered == 0
        matches, _, _ = pipeline.advance({}, identity_delivery)
        assert matches == []


class TestSchedulerHooks:
    def test_base_request_payload_is_binary(self):
        pipeline = make_pipeline()
        assert pipeline.request_payload(0, 1, queue=None, now_ns=0.0) is None

    def test_base_observe_sent_is_noop(self):
        pipeline = make_pipeline()
        assert pipeline.observe_sent(0, 1, 1234) is None

    def test_matcher_accessor(self):
        pipeline = make_pipeline()
        assert isinstance(pipeline.matcher, NegotiaToRMatcher)
