"""Tests for link failure injection, detection, and recovery (section 3.6.1)."""

import random

import pytest

from repro.sim.failures import (
    Direction,
    FailureEvent,
    FailurePlan,
    LinkFailureModel,
    LinkRef,
    random_failure_plan,
)


def egress(tor, port):
    return LinkRef(tor, port, Direction.EGRESS)


def ingress(tor, port):
    return LinkRef(tor, port, Direction.INGRESS)


class TestActualState:
    def test_fresh_model_is_healthy(self):
        model = LinkFailureModel(8, 2)
        assert model.egress_ok(0, 0)
        assert model.ingress_ok(7, 1)
        assert not model.any_failed

    def test_fail_and_repair_egress(self):
        model = LinkFailureModel(8, 2)
        model.apply(FailureEvent(0.0, egress(3, 1), fail=True))
        assert not model.egress_ok(3, 1)
        assert model.ingress_ok(3, 1)  # other direction unaffected
        model.apply(FailureEvent(1.0, egress(3, 1), fail=False))
        assert model.egress_ok(3, 1)

    def test_transmission_needs_both_fibers(self):
        model = LinkFailureModel(8, 2)
        assert model.transmission_ok(0, 1, 5, 1)
        model.apply(FailureEvent(0.0, egress(0, 1), fail=True))
        assert not model.transmission_ok(0, 1, 5, 1)
        model.apply(FailureEvent(0.0, egress(0, 1), fail=False))
        model.apply(FailureEvent(0.0, ingress(5, 1), fail=True))
        assert not model.transmission_ok(0, 1, 5, 1)


class TestDetection:
    def test_detection_lags_by_detect_epochs(self):
        model = LinkFailureModel(8, 2, detect_epochs=3)
        model.apply(FailureEvent(0.0, egress(1, 0), fail=True))
        assert model.detected_egress_ok(1, 0)
        model.tick_epoch()
        model.tick_epoch()
        assert model.detected_egress_ok(1, 0)  # evidence still accumulating
        model.tick_epoch()
        assert not model.detected_egress_ok(1, 0)
        assert model.any_detected

    def test_recovery_detection_is_symmetric(self):
        model = LinkFailureModel(8, 2, detect_epochs=2)
        model.apply(FailureEvent(0.0, ingress(2, 1), fail=True))
        model.tick_epoch()
        model.tick_epoch()
        assert not model.detected_ingress_ok(2, 1)
        model.apply(FailureEvent(5.0, ingress(2, 1), fail=False))
        model.tick_epoch()
        assert not model.detected_ingress_ok(2, 1)  # still excluded
        model.tick_epoch()
        assert model.detected_ingress_ok(2, 1)

    def test_flapping_link_resets_evidence(self):
        model = LinkFailureModel(8, 2, detect_epochs=3)
        link = egress(0, 0)
        model.apply(FailureEvent(0.0, link, fail=True))
        model.tick_epoch()
        model.tick_epoch()
        model.apply(FailureEvent(1.0, link, fail=False))
        for _ in range(5):
            model.tick_epoch()
        assert model.detected_egress_ok(0, 0)

    def test_immediate_detection_with_zero_lag(self):
        model = LinkFailureModel(8, 2, detect_epochs=0)
        model.apply(FailureEvent(0.0, egress(0, 0), fail=True))
        model.tick_epoch()
        assert not model.detected_egress_ok(0, 0)

    def test_rejects_negative_detect_epochs(self):
        with pytest.raises(ValueError):
            LinkFailureModel(8, 2, detect_epochs=-1)


class TestFailurePlan:
    def test_events_sorted_by_time(self):
        plan = FailurePlan()
        plan.add_repair(50.0, egress(0, 0))
        plan.add_failure(10.0, egress(0, 0))
        events = plan.sorted_events()
        assert [e.time_ns for e in events] == [10.0, 50.0]
        assert events[0].fail and not events[1].fail

    def test_random_plan_counts(self):
        plan, failed = random_failure_plan(
            8, 2, failure_ratio=0.25, fail_at_ns=100.0, repair_at_ns=200.0,
            rng=random.Random(0),
        )
        # 8 ToRs x 2 ports x 2 directions = 32 links; 25% = 8 links.
        assert len(failed) == 8
        assert len(plan.events) == 16  # fail + repair per link
        assert len(set(failed)) == 8

    def test_random_plan_without_repair(self):
        plan, failed = random_failure_plan(
            8, 2, failure_ratio=0.5, fail_at_ns=0.0, repair_at_ns=None,
            rng=random.Random(1),
        )
        assert all(e.fail for e in plan.events)
        assert len(failed) == 16

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            random_failure_plan(8, 2, 1.5, 0.0, None, random.Random(0))

    def test_zero_ratio_fails_nothing(self):
        plan, failed = random_failure_plan(
            8, 2, 0.0, 0.0, None, random.Random(0)
        )
        assert failed == []
        assert plan.events == []
