"""Tests for the PIAS per-destination queues (sections 3.1 and 3.4.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.flows import Flow
from repro.sim.queues import PiasDestQueue

THRESHOLDS = (1000, 10000)


def make_flow(size, arrival=0.0, fid=0, src=0, dst=1):
    return Flow(fid=fid, src=src, dst=dst, size_bytes=size, arrival_ns=arrival)


class TestEnqueue:
    def test_small_flow_lands_entirely_in_top_band(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(500))
        assert q.band_bytes(0) == 500
        assert q.band_bytes(1) == 0
        assert q.band_bytes(2) == 0

    def test_medium_flow_splits_across_two_bands(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(4000))
        assert q.band_bytes(0) == 1000
        assert q.band_bytes(1) == 3000
        assert q.band_bytes(2) == 0

    def test_elephant_flow_splits_across_three_bands(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(50000))
        assert q.band_bytes(0) == 1000
        assert q.band_bytes(1) == 9000
        assert q.band_bytes(2) == 40000

    def test_exact_threshold_flow(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(1000))
        assert q.band_bytes(0) == 1000
        assert q.band_bytes(1) == 0

    def test_pending_bytes_accumulate(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(500))
        q.enqueue_flow(make_flow(4000, fid=1))
        assert q.pending_bytes == 4500

    def test_disabled_pias_uses_single_band(self):
        q = PiasDestQueue(THRESHOLDS, enabled=False)
        q.enqueue_flow(make_flow(50000))
        assert q.num_bands == 1
        assert q.band_bytes(0) == 50000

    def test_enqueue_bytes_validates(self):
        q = PiasDestQueue(THRESHOLDS)
        with pytest.raises(ValueError):
            q.enqueue_bytes(make_flow(10), 0, band=0, eligible_ns=0.0)
        with pytest.raises(ValueError):
            q.enqueue_bytes(make_flow(10), 5, band=3, eligible_ns=0.0)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            PiasDestQueue((10000, 1000))


class TestHeadBand:
    def test_priority_order(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(50000))  # fills all three bands
        assert q.head_band(now_ns=0.0) == 0

    def test_eligibility_gates_head(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(500, arrival=100.0))
        assert q.head_band(now_ns=50.0) is None
        assert q.head_band(now_ns=100.0) == 0

    def test_lower_band_serves_while_higher_not_yet_eligible(self):
        """A late mice flow must not block earlier elephant data."""
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(50000, arrival=0.0))
        # Drain band 0 and 1 so only band 2 remains eligible now.
        q.pop_bytes(0, 1000)
        q.pop_bytes(1, 9000)
        q.enqueue_flow(make_flow(500, arrival=1000.0, fid=1))
        assert q.head_band(now_ns=0.0) == 2
        assert q.head_band(now_ns=1000.0) == 0

    def test_empty_queue(self):
        q = PiasDestQueue(THRESHOLDS)
        assert q.head_band(0.0) is None
        assert q.is_empty


class TestNextEligibility:
    def test_earliest_across_bands(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(500, arrival=300.0))
        q.enqueue_flow(make_flow(20000, arrival=100.0, fid=1))
        assert q.next_eligibility() == 100.0

    def test_above_band_excludes_lower_priority(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(50000, arrival=100.0))
        q.pop_bytes(0, 1000)
        q.pop_bytes(1, 9000)
        # Only band 2 holds data; nothing *above* band 2 is pending.
        assert q.next_eligibility(above_band=2) == math.inf

    def test_infinite_when_empty(self):
        assert PiasDestQueue(THRESHOLDS).next_eligibility() == math.inf


class TestPopBytes:
    def test_partial_pop_keeps_segment(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(800))
        flow, taken = q.pop_bytes(0, 500)
        assert taken == 500
        assert q.band_bytes(0) == 300
        assert flow.fid == 0

    def test_pop_caps_at_segment(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(300))
        _flow, taken = q.pop_bytes(0, 1000)
        assert taken == 300
        assert q.is_empty

    def test_one_packet_never_mixes_flows(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(300))
        q.enqueue_flow(make_flow(300, fid=1))
        flow, taken = q.pop_bytes(0, 1000)
        assert (flow.fid, taken) == (0, 300)
        flow, taken = q.pop_bytes(0, 1000)
        assert (flow.fid, taken) == (1, 300)

    def test_pop_from_empty_band_raises(self):
        with pytest.raises(ValueError):
            PiasDestQueue(THRESHOLDS).pop_bytes(0, 100)

    def test_pop_zero_bytes_raises(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(100))
        with pytest.raises(ValueError):
            q.pop_bytes(0, 0)


class TestDrainSinglePacket:
    def test_serves_highest_eligible_band(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(50000))
        flow, taken = q.drain_single_packet(595, now_ns=0.0)
        assert taken == 595
        assert q.band_bytes(0) == 1000 - 595

    def test_none_when_nothing_eligible(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(500, arrival=10.0))
        assert q.drain_single_packet(595, now_ns=5.0) is None


def reference_drain(queue, num_slots, payload, slot_start_ns):
    """Slot-by-slot reference semantics for drain_slots."""
    deliveries = []
    for slot in range(num_slots):
        band = queue.head_band(slot_start_ns(slot))
        if band is None:
            continue
        flow, taken = queue.pop_bytes(band, payload)
        deliveries.append((flow.fid, taken, slot))
    return deliveries


def aggregate(deliveries):
    """Collapse per-packet deliveries to per-flow (bytes, last slot)."""
    totals = {}
    for fid, taken, slot in deliveries:
        bytes_so_far, _ = totals.get(fid, (0, -1))
        totals[fid] = (bytes_so_far + taken, slot)
    return totals


flow_strategy = st.lists(
    st.tuples(
        st.integers(1, 30000),  # size
        st.floats(0.0, 50.0),  # arrival (spans several slot times)
    ),
    min_size=0,
    max_size=8,
)


class TestDrainSlots:
    def test_single_small_flow_uses_one_slot(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(500))
        out = []
        used = q.drain_slots(10, 1115, lambda s: float(s), lambda f, b, s: out.append((f.fid, b, s)))
        assert out == [(0, 500, 0)]
        assert used == 1

    def test_elephant_bulk_drain_matches_slot_math(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(50000))
        out = []
        q.drain_slots(100, 1115, lambda s: float(s), lambda f, b, s: out.append((b, s)))
        # band 0: 1000 B -> slot 0; band 1: 9000 B -> slots 1-9 (ceil 8.07);
        # band 2: 40000 B -> 36 slots.
        assert out[0] == (1000, 0)
        assert out[1] == (9000, 1 + math.ceil(9000 / 1115) - 1)
        assert out[2] == (40000, out[1][1] + 1 + math.ceil(40000 / 1115) - 1)

    def test_phase_end_truncates(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(50000))
        out = []
        used = q.drain_slots(5, 1115, lambda s: float(s), lambda f, b, s: out.append((b, s)))
        assert used == 5
        # Slot 0 carries the whole 1000 B band-0 segment (one packet per
        # slot, packets never mix bands), slots 1-4 carry full band-1 packets.
        drained = 1000 + 4 * 1115
        assert sum(b for b, _ in out) == drained
        assert q.pending_bytes == 50000 - drained

    def test_waits_for_eligibility(self):
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(500, arrival=2.5))
        out = []
        q.drain_slots(10, 1115, lambda s: float(s), lambda f, b, s: out.append((f.fid, b, s)))
        assert out == [(0, 500, 3)]  # first slot starting at/after 2.5

    def test_preemption_by_late_mice(self):
        """An elephant's bulk run is interrupted when mice become eligible."""
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_flow(make_flow(50000, arrival=0.0))
        q.pop_bytes(0, 1000)
        q.pop_bytes(1, 9000)  # only band 2 remains
        q.enqueue_flow(make_flow(200, arrival=4.5, fid=1))
        out = []
        q.drain_slots(20, 1115, lambda s: float(s), lambda f, b, s: out.append((f.fid, b, s)))
        # Elephant runs slots 0-4, mice at slot 5, elephant resumes.
        assert out[0] == (0, 5 * 1115, 4)
        assert out[1] == (1, 200, 5)
        assert out[2][0] == 0

    @given(flows=flow_strategy, num_slots=st.integers(1, 60))
    @settings(max_examples=150, deadline=None)
    def test_chunked_drain_equals_per_slot_reference(self, flows, num_slots):
        """drain_slots is an exact bulk version of one-packet-per-slot."""
        payload = 1115
        fast_q = PiasDestQueue(THRESHOLDS)
        slow_q = PiasDestQueue(THRESHOLDS)
        for fid, (size, arrival) in enumerate(flows):
            fast_q.enqueue_flow(make_flow(size, arrival, fid=fid))
            slow_q.enqueue_flow(make_flow(size, arrival, fid=fid))
        slot_time = lambda s: s * 1.0
        fast_out = []
        fast_q.drain_slots(
            num_slots, payload, slot_time,
            lambda f, b, s: fast_out.append((f.fid, b, s)),
        )
        slow_out = reference_drain(slow_q, num_slots, payload, slot_time)
        assert aggregate(fast_out) == aggregate(slow_out)
        assert fast_q.pending_bytes == slow_q.pending_bytes

    @given(flows=flow_strategy)
    @settings(max_examples=100, deadline=None)
    def test_byte_conservation(self, flows):
        q = PiasDestQueue(THRESHOLDS)
        total = 0
        for fid, (size, arrival) in enumerate(flows):
            q.enqueue_flow(make_flow(size, arrival, fid=fid))
            total += size
        drained = []
        q.drain_slots(1000, 1115, lambda s: s * 1.0, lambda f, b, s: drained.append(b))
        assert sum(drained) + q.pending_bytes == total


class TestDrainSlotsPreemptionEdge:
    """The ``run = 0 -> run = 1`` guard in :meth:`PiasDestQueue.drain_slots`.

    With an exact slot clock the guard is unreachable: if a higher band's
    head were eligible at the current slot's start, ``head_band`` would have
    chosen it.  But ``slot_start_ns`` is caller-supplied and may carry float
    rounding, so the same slot index can evaluate below the preemption time
    in ``head_band`` and at/above it in the run-capping loop — the guard
    then forces one packet of progress instead of looping forever.
    """

    def test_inconsistent_slot_clock_forces_single_packet_run(self):
        q = PiasDestQueue(THRESHOLDS)
        mice = make_flow(600, arrival=100.0, fid=1)
        q.enqueue_flow(mice)  # 600 bytes in band 0, eligible at 100.0
        elephant = make_flow(50_000, arrival=0.0, fid=2)
        q.enqueue_bytes(elephant, 5000, band=2, eligible_ns=0.0)

        calls = {0: 0}

        def jittery_slot_start(slot):
            if slot == 0:
                # First evaluation (head_band's `now`) lands just below the
                # band-0 eligibility; re-evaluations land exactly on it,
                # mimicking a float-rounding inconsistency.
                calls[0] += 1
                return 99.99999999999 if calls[0] == 1 else 100.0
            return 100.0 + slot * 90.0

        served = []
        used = q.drain_slots(
            num_slots=10,
            payload_bytes=1000,
            slot_start_ns=jittery_slot_start,
            deliver=lambda f, b, s: served.append((f.fid, b, s)),
        )

        # Slot 0 hits the edge: head_band picks band 2, the cap loop sees
        # slot 0 already at the preemption time (run would be 0), and the
        # guard serves exactly one band-2 packet.  Band 0 then preempts.
        assert calls[0] >= 2
        assert served == [(2, 1000, 0), (1, 600, 1), (2, 4000, 5)]
        assert used == 6
        assert q.is_empty

    def test_consistent_clock_caps_run_at_preemption(self):
        # The ordinary mid-epoch preemption: a higher-band arrival caps the
        # elephant's run at the first slot starting at/after eligibility.
        q = PiasDestQueue(THRESHOLDS)
        q.enqueue_bytes(make_flow(50_000, fid=2), 10_000, band=2, eligible_ns=0.0)
        q.enqueue_flow(make_flow(600, arrival=270.0, fid=1))

        served = []
        used = q.drain_slots(
            num_slots=10,
            payload_bytes=1000,
            slot_start_ns=lambda v: v * 90.0,
            deliver=lambda f, b, s: served.append((f.fid, b, s)),
        )
        assert served == [(2, 3000, 2), (1, 600, 3), (2, 6000, 9)]
        assert used == 10
        assert q.pending_bytes == 1000
