"""Tests for the matching-efficiency model (section 3.2.2 / appendix A.1)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.efficiency import (
    asymptotic_match_ratio,
    binomial_acceptance_expectation,
    expected_match_ratio,
    monte_carlo_match_ratio,
)


class TestClosedForm:
    def test_paper_value_at_n_128(self):
        """Parallel network, 128 ToRs: E[Y] = 0.634 (appendix A.1)."""
        assert expected_match_ratio(128) == pytest.approx(0.634, abs=5e-4)

    def test_paper_value_at_n_16(self):
        """Thin-clos, W = 16: E[Y] = 0.644 (appendix A.1)."""
        assert expected_match_ratio(16) == pytest.approx(0.644, abs=5e-4)

    def test_limit_is_1_minus_1_over_e(self):
        assert asymptotic_match_ratio() == pytest.approx(1 - 1 / math.e)
        assert expected_match_ratio(10**6) == pytest.approx(
            asymptotic_match_ratio(), abs=1e-5
        )

    def test_single_tor_always_accepts(self):
        assert expected_match_ratio(1) == pytest.approx(1.0)

    @given(n=st.integers(2, 500))
    @settings(max_examples=100)
    def test_monotonically_decreasing_in_n(self, n):
        """More competitors -> lower acceptance (section 3.2.2)."""
        assert expected_match_ratio(n) > expected_match_ratio(n + 1)

    @given(n=st.integers(1, 200))
    @settings(max_examples=50)
    def test_closed_form_equals_binomial_sum(self, n):
        assert expected_match_ratio(n) == pytest.approx(
            binomial_acceptance_expectation(n), abs=1e-12
        )

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            expected_match_ratio(0)
        with pytest.raises(ValueError):
            binomial_acceptance_expectation(0)


class TestMonteCarlo:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_simulation_matches_theory(self, n):
        ratio = monte_carlo_match_ratio(
            n, ports=4, rounds=400, rng=random.Random(42)
        )
        assert ratio == pytest.approx(expected_match_ratio(n), abs=0.02)

    def test_thinclos_beats_parallel_competition(self):
        """Fewer competitors per port (W=16 vs n=128) -> higher efficiency."""
        rng = random.Random(1)
        small = monte_carlo_match_ratio(16, 4, 300, rng)
        big = monte_carlo_match_ratio(128, 4, 40, rng)
        assert small > big

    def test_validates_arguments(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            monte_carlo_match_ratio(1, 4, 10, rng)
        with pytest.raises(ValueError):
            monte_carlo_match_ratio(8, 0, 10, rng)
        with pytest.raises(ValueError):
            monte_carlo_match_ratio(8, 4, 0, rng)
