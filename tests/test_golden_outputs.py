"""Golden snapshot tests: every experiment's output is pinned by digest.

Each experiment runs at the ``micro`` scale and its
``ExperimentResult.to_dict()`` is hashed (SHA-256 over canonical JSON) and
compared against the baseline recorded under tests/golden/.  Any change
that shifts a single bit of any table — engine, workload generator,
scheduler variant, collector, rendering of to_dict — fails here.

After an *intentional* output change, re-record the baselines with::

    PYTHONPATH=src python -m repro golden --record

and commit the updated tests/golden/*.json together with the code change.

The migration guard at the bottom keeps the experiments layer on the
declared-run path: no experiment module may construct a simulator (or call
the run helpers) directly — every simulation must flow through
RunSpec/SweepRunner so it parallelizes, caches, and hits this harness.
"""

from __future__ import annotations

import inspect
import json
import re
from pathlib import Path

import pytest

from repro import golden
from repro.experiments import EXPERIMENT_MODULES, MICRO, load_experiment
from repro.sweep import SweepRunner

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


@pytest.fixture(scope="module")
def shared_runner():
    """One runner for the whole suite: specs shared between experiments
    (e.g. the poisson base runs of fig9 and tables 4-6) execute once."""
    return SweepRunner()


@pytest.mark.parametrize("name", sorted(EXPERIMENT_MODULES))
def test_experiment_matches_golden_digest(name, shared_runner):
    result = golden.compute_result(name, MICRO, runner=shared_runner)
    check = golden.check_golden(GOLDEN_DIR, name, result)
    assert check.expected is not None, (
        f"no baseline for {name}; record one with "
        "'PYTHONPATH=src python -m repro golden --record'"
    )
    if not check.ok:
        baseline = golden.load_golden(GOLDEN_DIR, name)
        assert result.to_dict() == baseline["result"], (
            f"{name} output changed (digest {check.digest[:12]} != "
            f"{check.expected[:12]}); if intentional, re-record with "
            "'PYTHONPATH=src python -m repro golden --record'"
        )
        pytest.fail(
            f"{name}: digest changed but payload compares equal — "
            "canonicalization drift; re-record if intentional"
        )


def test_golden_files_carry_the_recorded_scale():
    for name in sorted(EXPERIMENT_MODULES):
        baseline = golden.load_golden(GOLDEN_DIR, name)
        assert baseline is not None, f"missing golden file for {name}"
        assert baseline["scale"] == golden.GOLDEN_SCALE
        assert baseline["experiment"] == name
        assert re.fullmatch(r"[0-9a-f]{64}", baseline["digest"])


def test_no_stray_golden_files():
    recorded = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert recorded == set(EXPERIMENT_MODULES), (
        "tests/golden/ out of sync with the experiment registry"
    )


# ---------------------------------------------------------------------------
# migration guard: the experiments layer stays on the declared-run path
# ---------------------------------------------------------------------------

FORBIDDEN = (
    "NegotiaToRSimulator",
    "ObliviousSimulator",
    "SelectiveRelaySimulator",
    "run_negotiator",
    "run_oblivious",
    "run_relay",
)


def _referenced_identifiers(module) -> set[str]:
    """Every Name/attribute/import identifier a module's code references
    (docstrings and comments excluded — they may cite the classes)."""
    import ast

    tree = ast.parse(inspect.getsource(module))
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.name for alias in node.names)
    return names


@pytest.mark.parametrize("name", sorted(EXPERIMENT_MODULES))
def test_experiment_module_declares_all_runs_as_specs(name):
    """No experiment constructs a simulator or calls a run helper directly.

    The reference implementations live in experiments/common.py and are
    reached only through repro.sweep.runner.execute_spec — that is what
    makes `repro run --all --jobs N --store PATH` able to parallelize,
    dedupe, and resume every figure and table.
    """
    referenced = _referenced_identifiers(load_experiment(name))
    offenders = sorted(referenced & set(FORBIDDEN))
    assert not offenders, (
        f"experiments/{EXPERIMENT_MODULES[name]}.py references "
        f"{offenders}; declare the run as a RunSpec and execute it "
        "through SweepRunner instead"
    )


def test_cli_has_no_direct_simulator_construction():
    """`repro simulate` routes through the shared run helpers too."""
    import repro.cli

    source = inspect.getsource(repro.cli)
    assert "NegotiaToRSimulator(" not in source
    assert "ObliviousSimulator(" not in source


# ---------------------------------------------------------------------------
# the `repro golden` CLI: record, verify, and fail on divergence
# ---------------------------------------------------------------------------


class TestGoldenCli:
    def _run(self, *args):
        import subprocess
        import sys

        src = str(Path(__file__).resolve().parent.parent / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", "golden", *args],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )

    def test_record_verify_and_detect_divergence(self, tmp_path):
        golden_dir = str(tmp_path / "golden")
        recorded = self._run(
            "fig7a", "--record", "--golden-dir", golden_dir
        )
        assert recorded.returncode == 0, recorded.stderr
        assert "recorded fig7a" in recorded.stdout

        verified = self._run("fig7a", "--golden-dir", golden_dir)
        assert verified.returncode == 0, verified.stderr
        assert "ok       fig7a" in verified.stdout

        # Tamper with the baseline: verification must fail loudly.
        path = Path(golden_dir) / "fig7a.json"
        baseline = json.loads(path.read_text())
        baseline["digest"] = "0" * 64
        path.write_text(json.dumps(baseline))
        diverged = self._run("fig7a", "--golden-dir", golden_dir)
        assert diverged.returncode == 1
        assert "MISMATCH fig7a" in diverged.stdout
        assert "--record" in diverged.stderr

    def test_missing_baseline_fails(self, tmp_path):
        missing = self._run(
            "fig7a", "--golden-dir", str(tmp_path / "empty")
        )
        assert missing.returncode == 1
        assert "MISSING" in missing.stdout
