"""Edge cases and cross-module behaviours not covered elsewhere."""

import dataclasses
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    EpochConfig,
    Flow,
    NegotiaToRSimulator,
    ParallelNetwork,
    SimConfig,
    ThinClos,
)
from repro.core.matching import NegotiaToRMatcher
from repro.core.variants import HolDelayScheduler, StatefulScheduler, ValuePriorityMatcher
from repro.sim.queues import PiasDestQueue
from repro.workloads.traces import hadoop


def make_flow(size, arrival=0.0, fid=0, src=0, dst=1):
    return Flow(fid=fid, src=src, dst=dst, size_bytes=size, arrival_ns=arrival)


class TestDrainBandSlots:
    """Direct tests for the band-restricted drain used by selective relay."""

    def test_only_requested_band_is_touched(self):
        queue = PiasDestQueue((1000, 10000))
        queue.enqueue_flow(make_flow(50_000))
        out = []
        queue.drain_band_slots(
            band=2, num_slots=5, payload_bytes=1115,
            slot_start_ns=lambda s: float(s),
            deliver=lambda f, b, s: out.append((b, s)),
        )
        assert sum(b for b, _ in out) == 5 * 1115
        assert queue.band_bytes(0) == 1000  # untouched
        assert queue.band_bytes(1) == 9000  # untouched

    def test_respects_eligibility(self):
        queue = PiasDestQueue((1000, 10000))
        queue.enqueue_flow(make_flow(50_000, arrival=100.0))
        out = []
        used = queue.drain_band_slots(
            band=2, num_slots=5, payload_bytes=1115,
            slot_start_ns=lambda s: float(s),  # all slots before 100 ns
            deliver=lambda f, b, s: out.append(b),
        )
        assert used == 0 and out == []

    def test_stops_when_band_empties(self):
        queue = PiasDestQueue((1000, 10000))
        queue.enqueue_flow(make_flow(12_000))  # band 2 holds 2000 B
        out = []
        used = queue.drain_band_slots(
            band=2, num_slots=10, payload_bytes=1115,
            slot_start_ns=lambda s: float(s),
            deliver=lambda f, b, s: out.append(b),
        )
        assert sum(out) == 2000
        assert used == math.ceil(2000 / 1115)

    @given(size=st.integers(10_001, 100_000), slots=st.integers(1, 40))
    @settings(max_examples=50, deadline=None)
    def test_band_conservation(self, size, slots):
        queue = PiasDestQueue((1000, 10000))
        queue.enqueue_flow(make_flow(size))
        band2_before = queue.band_bytes(2)
        drained = []
        queue.drain_band_slots(
            band=2, num_slots=slots, payload_bytes=1115,
            slot_start_ns=lambda s: float(s),
            deliver=lambda f, b, s: drained.append(b),
        )
        assert queue.band_bytes(2) + sum(drained) == band2_before


class TestTruncatedCDF:
    def test_cap_above_max_is_identity(self):
        cdf = hadoop()
        assert cdf.truncated(10**9) is cdf

    def test_cap_below_min_rejected(self):
        with pytest.raises(ValueError):
            hadoop().truncated(10)

    def test_samples_respect_cap(self):
        capped = hadoop().truncated(50_000)
        rng = random.Random(0)
        assert all(capped.sample(rng) <= 50_000 for _ in range(500))

    def test_mass_is_preserved_up_to_the_cap(self):
        base = hadoop()
        capped = base.truncated(100_000)
        # Below the cap the CDFs agree at the shared anchors.
        assert capped.cdf(1000) == pytest.approx(base.cdf(1000))
        assert capped.cdf(100_000) == pytest.approx(1.0)

    def test_mean_shrinks_with_cap(self):
        base = hadoop()
        assert base.truncated(100_000).mean() < base.mean()

    @given(cap=st.integers(2000, 9_000_000))
    @settings(max_examples=50, deadline=None)
    def test_truncated_is_valid_distribution(self, cap):
        capped = hadoop().truncated(cap)
        assert capped.max_bytes <= cap
        # exp(log(cap)) may overshoot by an ulp; sampling rounds it away.
        assert capped.quantile(1.0) <= cap * (1 + 1e-9)
        assert capped.mean() > 0


class TestEngineWithoutPiggyback:
    def test_predefined_phase_carries_no_data(self):
        epoch = dataclasses.replace(EpochConfig(), piggyback_enabled=False)
        config = SimConfig(
            num_tors=8, ports_per_tor=2, uplink_gbps=100.0,
            host_aggregate_gbps=100.0, epoch=epoch,
        )
        sim = NegotiaToRSimulator(
            config, ParallelNetwork(8, 2), [make_flow(500)]
        )
        sim.step_epoch()
        sim.step_epoch()
        # Nothing delivered until the scheduled phase of epoch 2.
        assert sim.tracker.delivered_bytes == 0
        sim.step_epoch()
        assert sim.tracker.delivered_bytes == 500

    def test_zero_threshold_requests_fire_for_any_byte(self):
        epoch = dataclasses.replace(EpochConfig(), piggyback_enabled=False)
        assert epoch.request_threshold_bytes == 0


class TestVariantCorners:
    def test_hol_delay_single_band_uses_plain_wait(self):
        matcher = ValuePriorityMatcher(ParallelNetwork(8, 2), random.Random(0))
        scheduler = HolDelayScheduler(matcher, alpha=0.001)
        queue = PiasDestQueue((), enabled=False)
        queue.enqueue_flow(make_flow(500, arrival=100.0))
        assert scheduler.request_payload(0, 1, queue, 600.0) == pytest.approx(500.0)

    def test_stateful_revert_on_rejected_grant(self):
        """A grant that loses the ACCEPT race refunds its reservation."""
        topo = ParallelNetwork(4, 1)
        scheduler = StatefulScheduler(
            NegotiaToRMatcher(topo, random.Random(0)),
            phase_capacity_bytes=1000,
        )
        # Source 0 requests both destinations; with one port it can accept
        # only one grant per epoch, the other must be reverted.
        queue_a = PiasDestQueue((), enabled=False)
        queue_a.enqueue_flow(make_flow(5000, dst=1))
        queue_b = PiasDestQueue((), enabled=False)
        queue_b.enqueue_flow(make_flow(5000, dst=2))
        requests = {
            1: {0: scheduler.request_payload(0, 1, queue_a, 0.0)},
            2: {0: scheduler.request_payload(0, 2, queue_b, 0.0)},
        }
        scheduler.advance(requests, lambda g: g)
        scheduler.advance({}, lambda g: g)  # grants epoch (reserved twice)
        reserved = scheduler.demand_estimate(1, 0) + scheduler.demand_estimate(2, 0)
        assert reserved == pytest.approx(10_000 - 2 * 1000)
        matches, _, _ = scheduler.advance({}, lambda g: g)  # accept epoch
        assert len(matches) == 1
        # One reservation was refunded at the next advance.
        scheduler.advance({}, lambda g: g)
        total = scheduler.demand_estimate(1, 0) + scheduler.demand_estimate(2, 0)
        assert total == pytest.approx(10_000 - 2 * 1000 + 1000)

    def test_stateful_lost_grant_is_refunded_too(self):
        topo = ParallelNetwork(4, 1)
        scheduler = StatefulScheduler(
            NegotiaToRMatcher(topo, random.Random(0)),
            phase_capacity_bytes=1000,
        )
        queue = PiasDestQueue((), enabled=False)
        queue.enqueue_flow(make_flow(5000))
        requests = {1: {0: scheduler.request_payload(0, 1, queue, 0.0)}}
        scheduler.advance(requests, lambda g: g)
        scheduler.advance({}, lambda g: {})  # grant issued but lost
        assert scheduler.demand_estimate(1, 0) == pytest.approx(4000)
        scheduler.advance({}, lambda g: g)  # nothing accepted
        scheduler.advance({}, lambda g: g)  # refund lands
        assert scheduler.demand_estimate(1, 0) == pytest.approx(5000)


class TestMixedFailureAndBuffering:
    def test_failures_and_receiver_buffers_compose(self):
        """rx_usable composes detection with admission; the run stays sane."""
        from repro.sim.failures import Direction, FailurePlan, LinkRef

        config = SimConfig(
            num_tors=8, ports_per_tor=2, uplink_gbps=100.0,
            host_aggregate_gbps=100.0, receiver_buffer_bytes=200_000,
        )
        plan = FailurePlan()
        plan.add_failure(0.0, LinkRef(1, 0, Direction.INGRESS))
        flows = [
            make_flow(300_000, fid=0, src=2, dst=1),
            make_flow(300_000, fid=1, src=3, dst=1),
        ]
        sim = NegotiaToRSimulator(
            config, ParallelNetwork(8, 2), flows, failure_plan=plan
        )
        sim.run(2_000_000)
        injected = sum(f.size_bytes for f in flows)
        left = sum(f.remaining_bytes for f in flows)
        assert sim.tracker.delivered_bytes + left == injected
        assert sim.tracker.delivered_bytes > 0


class TestInOrderDelivery:
    """Section 3.6.5: per-pair byte delivery times are non-decreasing."""

    @pytest.mark.parametrize("topology_cls", ["parallel", "thinclos"])
    def test_pair_deliveries_are_time_ordered(self, topology_cls):
        config = SimConfig(
            num_tors=8, ports_per_tor=2, uplink_gbps=100.0,
            host_aggregate_gbps=100.0,
        )
        topo = (
            ParallelNetwork(8, 2) if topology_cls == "parallel"
            else ThinClos(8, 2, 4)
        )
        flows = [
            make_flow(40_000, fid=0),
            make_flow(5_000, fid=1, arrival=3000.0),
        ]
        sim = NegotiaToRSimulator(config, topo, flows)
        deliveries = []
        original = sim.tracker.deliver

        def spy(flow, num_bytes, time_ns):
            deliveries.append((flow.fid, time_ns))
            original(flow, num_bytes, time_ns)

        sim.tracker.deliver = spy
        sim.run_until_complete(max_ns=10_000_000)
        times = [t for _fid, t in deliveries]
        assert times == sorted(times)


class TestSeedDeterminism:
    def test_identical_seeds_identical_results(self):
        def run(seed):
            from repro.workloads.generators import poisson_workload

            config = SimConfig(
                num_tors=8, ports_per_tor=2, uplink_gbps=100.0,
                host_aggregate_gbps=100.0, seed=seed,
            )
            flows = poisson_workload(
                hadoop(), 0.7, 8, 100.0, 150_000, random.Random(seed)
            )
            sim = NegotiaToRSimulator(config, ParallelNetwork(8, 2), flows)
            sim.run(150_000)
            return (
                sim.tracker.delivered_bytes,
                len(sim.tracker.completed_flows),
            )

        assert run(5) == run(5)
        assert run(5) != run(6)  # and the seed actually matters
