"""Tests for NegotiaToR Matching (section 3.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import Match, NegotiaToRMatcher, validate_matching
from repro.topology.parallel import ParallelNetwork
from repro.topology.thinclos import ThinClos


def saturated_requests(n):
    """Everyone requests everyone: dst -> {src: None}."""
    return {
        dst: {src: None for src in range(n) if src != dst} for dst in range(n)
    }


def requests_from_pairs(pairs):
    requests = {}
    for src, dst in pairs:
        requests.setdefault(dst, {})[src] = None
    return requests


class TestGrantParallel:
    def test_all_ports_granted_under_saturation(self):
        topo = ParallelNetwork(8, 2)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        grants, num = matcher.grant_step(saturated_requests(8))
        assert num == 8 * 2  # every destination grants every port
        granted_ports = [g for gs in grants.values() for g in gs]
        assert len(granted_ports) == 16

    def test_single_request_gets_all_ports(self):
        topo = ParallelNetwork(8, 4)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        grants, num = matcher.grant_step({3: {5: None}})
        assert num == 4
        assert grants == {5: [(3, 0), (3, 1), (3, 2), (3, 3)]}

    def test_two_requests_split_ports(self):
        topo = ParallelNetwork(8, 4)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        grants, _ = matcher.grant_step({3: {5: None, 6: None}})
        assert len(grants[5]) == 2
        assert len(grants[6]) == 2

    def test_self_request_ignored(self):
        topo = ParallelNetwork(8, 2)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        grants, num = matcher.grant_step({3: {3: None}})
        assert num == 0
        assert grants == {}

    def test_uses_shared_ring(self):
        matcher = NegotiaToRMatcher(ParallelNetwork(8, 2), random.Random(0))
        assert matcher.uses_shared_grant_ring

    def test_grant_fairness_rotates(self):
        """With one port and two persistent requesters, grants alternate."""
        topo = ParallelNetwork(4, 1)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        winners = []
        for _ in range(4):
            grants, _ = matcher.grant_step({0: {1: None, 2: None}})
            (winner,) = [src for src, gs in grants.items() if gs]
            winners.append(winner)
        assert winners in ([1, 2, 1, 2], [2, 1, 2, 1])


class TestGrantThinClos:
    def test_per_port_rings(self):
        matcher = NegotiaToRMatcher(ThinClos(8, 2, 4), random.Random(0))
        assert not matcher.uses_shared_grant_ring

    def test_grants_respect_port_groups(self):
        topo = ThinClos(16, 4, 4)
        matcher = NegotiaToRMatcher(topo, random.Random(1))
        grants, _ = matcher.grant_step(saturated_requests(16))
        for src, port_grants in grants.items():
            for dst, port in port_grants:
                assert src in topo.reachable_srcs(dst, port)

    def test_one_grant_per_port(self):
        topo = ThinClos(16, 4, 4)
        matcher = NegotiaToRMatcher(topo, random.Random(1))
        grants, num = matcher.grant_step(saturated_requests(16))
        per_dst_ports = {}
        for src, port_grants in grants.items():
            for dst, port in port_grants:
                key = (dst, port)
                assert key not in per_dst_ports
                per_dst_ports[key] = src
        assert num == len(per_dst_ports)

    def test_unreachable_request_not_granted(self):
        """A request from outside a port's group can never win that port."""
        topo = ThinClos(16, 4, 4)
        matcher = NegotiaToRMatcher(topo, random.Random(1))
        # ToR 1 (group 0) can only reach ToR 6 (group 1) via port 1.
        grants, num = matcher.grant_step({6: {1: None}})
        assert num == 1
        assert grants[1] == [(6, 1)]


class TestAccept:
    def test_resolves_port_conflicts(self):
        topo = ParallelNetwork(8, 2)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        # Source 0 gets port-0 grants from two destinations.
        matches = matcher.accept_step({0: [(1, 0), (2, 0)]})
        assert len(matches) == 1
        assert matches[0].src == 0
        assert matches[0].port == 0
        assert matches[0].dst in (1, 2)

    def test_different_ports_both_accepted(self):
        topo = ParallelNetwork(8, 2)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        matches = matcher.accept_step({0: [(1, 0), (2, 1)]})
        assert {(m.port, m.dst) for m in matches} == {(0, 1), (1, 2)}

    def test_accept_fairness_rotates(self):
        topo = ParallelNetwork(4, 1)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        winners = [
            matcher.accept_step({0: [(1, 0), (2, 0)]})[0].dst for _ in range(4)
        ]
        assert winners in ([1, 2, 1, 2], [2, 1, 2, 1])

    def test_tx_unusable_port_rejects_all(self):
        topo = ParallelNetwork(8, 2)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        matches = matcher.accept_step(
            {0: [(1, 0), (2, 1)]}, tx_usable=lambda t, p: p != 0
        )
        assert [(m.port, m.dst) for m in matches] == [(1, 2)]


class TestRunEpochInvariants:
    @given(
        seed=st.integers(0, 2**32 - 1),
        pair_seed=st.integers(0, 2**32 - 1),
        density=st.floats(0.05, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_parallel_matching_invariants(self, seed, pair_seed, density):
        topo = ParallelNetwork(12, 3)
        matcher = NegotiaToRMatcher(topo, random.Random(seed))
        rng = random.Random(pair_seed)
        pairs = [
            (s, d)
            for s in range(12)
            for d in range(12)
            if s != d and rng.random() < density
        ]
        result = matcher.run_epoch(requests_from_pairs(pairs))
        validate_matching(result.matches, topo)
        assert result.num_accepts <= result.num_grants
        requested = set(pairs)
        for match in result.matches:
            assert (match.src, match.dst) in requested

    @given(
        seed=st.integers(0, 2**32 - 1),
        pair_seed=st.integers(0, 2**32 - 1),
        density=st.floats(0.05, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_thinclos_matching_invariants(self, seed, pair_seed, density):
        topo = ThinClos(16, 4, 4)
        matcher = NegotiaToRMatcher(topo, random.Random(seed))
        rng = random.Random(pair_seed)
        pairs = [
            (s, d)
            for s in range(16)
            for d in range(16)
            if s != d and rng.random() < density
        ]
        result = matcher.run_epoch(requests_from_pairs(pairs))
        validate_matching(result.matches, topo)
        for match in result.matches:
            assert match.port == topo.data_port(match.src, match.dst)

    def test_saturated_parallel_match_ratio_at_least_random_model(self):
        """Under persistent saturation the ring pointers self-organize, so
        the match ratio is at least the random-model bound 1-(1-1/n)^n
        (the engine-level tests check the ~0.63 value under real traffic,
        where arrival randomness keeps the rings de-correlated)."""
        topo = ParallelNetwork(16, 4)
        matcher = NegotiaToRMatcher(topo, random.Random(3))
        total_ratio = 0.0
        rounds = 200
        for _ in range(rounds):
            result = matcher.run_epoch(saturated_requests(16))
            total_ratio += result.match_ratio
        mean_ratio = total_ratio / rounds
        assert 0.644 - 0.02 <= mean_ratio <= 0.95

    def test_no_requests_no_matches(self):
        matcher = NegotiaToRMatcher(ParallelNetwork(8, 2), random.Random(0))
        result = matcher.run_epoch({})
        assert result.matches == []
        assert result.num_grants == 0
        with pytest.raises(ValueError):
            result.match_ratio


class TestUsabilityPredicates:
    def test_rx_unusable_port_is_not_granted(self):
        topo = ParallelNetwork(8, 2)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        grants, num = matcher.grant_step(
            {3: {5: None}}, rx_usable=lambda t, p: p != 1
        )
        assert num == 1
        assert grants[5] == [(3, 0)]

    def test_tx_unusable_port_not_granted_in_parallel(self):
        """Destinations avoid granting a port whose source egress is down."""
        topo = ParallelNetwork(8, 2)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        grants, _ = matcher.grant_step(
            {3: {5: None}}, tx_usable=lambda t, p: not (t == 5 and p == 0)
        )
        assert grants[5] == [(3, 1)]

    def test_tx_unusable_port_not_granted_in_thinclos(self):
        topo = ThinClos(16, 4, 4)
        matcher = NegotiaToRMatcher(topo, random.Random(0))
        grants, num = matcher.grant_step(
            {6: {1: None}}, tx_usable=lambda t, p: False
        )
        assert num == 0
        assert grants == {}


class TestValidateMatching:
    def test_detects_tx_conflict(self):
        topo = ParallelNetwork(8, 2)
        with pytest.raises(ValueError, match="transmit"):
            validate_matching(
                [Match(0, 0, 1), Match(0, 0, 2)], topo
            )

    def test_detects_rx_conflict(self):
        topo = ParallelNetwork(8, 2)
        with pytest.raises(ValueError, match="receive"):
            validate_matching(
                [Match(1, 0, 2), Match(3, 0, 2)], topo
            )

    def test_detects_wrong_thinclos_port(self):
        topo = ThinClos(16, 4, 4)
        with pytest.raises(ValueError, match="port"):
            validate_matching([Match(1, 2, 6)], topo)
