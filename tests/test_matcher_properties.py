"""Property-based tests (hypothesis) for the matcher's structural invariants.

Whatever requests arrive — and whatever links have failed — a GRANT/ACCEPT
round must produce a valid *partial permutation* of the fabric's ports:

* no (src, port) transmits twice and no (dst, port) receives twice;
* every match answers a request that was actually issued (no spurious
  grants surviving to ACCEPT);
* thin-clos matches ride the single port the topology connects the pair
  through;
* matches never touch a port whose link is marked failed;
* the grant count bounds the accept count (ACCEPT only filters).

Hypothesis drives random fabrics, request sets, and failure sets through
``run_epoch`` (GRANT + ACCEPT back to back) on both topologies.
"""

from __future__ import annotations

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.matching import NegotiaToRMatcher, validate_matching
from repro.topology.parallel import ParallelNetwork
from repro.topology.thinclos import ThinClos

# (num_tors, ports_per_tor[, awgr_ports]) shapes small enough to exhaust.
PARALLEL_SHAPES = ((4, 2), (6, 3), (8, 4))
THINCLOS_SHAPES = ((4, 2, 2), (8, 2, 4), (8, 4, 2))


def _build(topology_kind: str, shape) -> tuple:
    if topology_kind == "parallel":
        num_tors, ports = shape
        topology = ParallelNetwork(num_tors, ports)
    else:
        num_tors, ports, awgr = shape
        topology = ThinClos(num_tors, ports, awgr)
    return topology, num_tors, topology.ports_per_tor


@st.composite
def matcher_case(draw, topology_kind: str):
    """(shape, requested pairs, failed (tor, port) sets, rng seed)."""
    shapes = PARALLEL_SHAPES if topology_kind == "parallel" else THINCLOS_SHAPES
    shape = draw(st.sampled_from(shapes))
    num_tors = shape[0]
    ports = shape[1]
    pairs = draw(
        st.sets(
            st.tuples(
                st.integers(0, num_tors - 1), st.integers(0, num_tors - 1)
            ).filter(lambda p: p[0] != p[1]),
            max_size=num_tors * 4,
        )
    )
    tor_ports = st.tuples(
        st.integers(0, num_tors - 1), st.integers(0, ports - 1)
    )
    failed_rx = draw(st.sets(tor_ports, max_size=num_tors))
    failed_tx = draw(st.sets(tor_ports, max_size=num_tors))
    seed = draw(st.integers(0, 2**16))
    return shape, pairs, failed_rx, failed_tx, seed


def _check_epoch(topology_kind, shape, pairs, failed_rx, failed_tx, seed):
    topology, num_tors, ports = _build(topology_kind, shape)
    matcher = NegotiaToRMatcher(topology, random.Random(seed))
    requests_by_dst: dict[int, dict[int, object]] = {}
    for src, dst in pairs:
        requests_by_dst.setdefault(dst, {})[src] = None
    rx_usable = (
        (lambda tor, port: (tor, port) not in failed_rx) if failed_rx else None
    )
    tx_usable = (
        (lambda tor, port: (tor, port) not in failed_tx) if failed_tx else None
    )

    outcome = matcher.run_epoch(requests_by_dst, rx_usable, tx_usable)

    # Structural partial permutation (raises on any port used twice or any
    # topology-unreachable pairing).
    validate_matching(outcome.matches, topology)
    assert outcome.num_accepts <= outcome.num_grants
    for match in outcome.matches:
        # Only requesting pairs get matched.
        assert (match.src, match.dst) in pairs
        assert match.src != match.dst
        assert 0 <= match.port < ports
        # Failed links carry no match.
        assert (match.dst, match.port) not in failed_rx
        assert (match.src, match.port) not in failed_tx
    if topology_kind == "thinclos":
        # One path per pair on thin-clos -> at most one match per pair.
        # (The parallel network may legitimately match a pair on several
        # planes at once; there per-port uniqueness is the invariant.)
        matched_pairs = [(m.src, m.dst) for m in outcome.matches]
        assert len(matched_pairs) == len(set(matched_pairs))


@settings(max_examples=120, deadline=None)
@given(case=matcher_case("parallel"))
def test_parallel_matching_is_valid_partial_permutation(case):
    _check_epoch("parallel", *case)


@settings(max_examples=120, deadline=None)
@given(case=matcher_case("thinclos"))
def test_thinclos_matching_is_valid_partial_permutation(case):
    _check_epoch("thinclos", *case)


@settings(max_examples=60, deadline=None)
@given(case=matcher_case("parallel"))
def test_failure_free_predicates_match_none_fast_path(case):
    """Passing all-True predicates must equal the None fast path bit-for-bit."""
    shape, pairs, _rx, _tx, seed = case
    topology, _n, _p = _build("parallel", shape)
    requests_by_dst: dict[int, dict[int, object]] = {}
    for src, dst in pairs:
        requests_by_dst.setdefault(dst, {})[src] = None

    fast = NegotiaToRMatcher(topology, random.Random(seed)).run_epoch(
        requests_by_dst
    )
    slow = NegotiaToRMatcher(topology, random.Random(seed)).run_epoch(
        requests_by_dst,
        rx_usable=lambda tor, port: True,
        tx_usable=lambda tor, port: True,
    )
    assert fast.num_grants == slow.num_grants
    assert [(m.src, m.port, m.dst) for m in fast.matches] == [
        (m.src, m.port, m.dst) for m in slow.matches
    ]
