#!/usr/bin/env python3
"""Fault-tolerance drill: fail fibers mid-run and watch recovery (3.6.1).

A saturating all-to-all workload keeps every link busy while 8% of all
directed fibers fail a third of the way through the run and are repaired at
two thirds.  The drill prints a per-window bandwidth timeline showing the
drop, the detection-and-exclusion steady state, and the post-repair
recovery — Fig 10's protocol as a narrated run.

Run:  python examples/failure_drill.py
"""

import random

from repro import (
    BandwidthRecorder,
    LinkFailureModel,
    NegotiaToRSimulator,
    ParallelNetwork,
    SimConfig,
    all_to_all_workload,
    random_failure_plan,
)

NUM_TORS, PORTS = 32, 4
FAILURE_RATIO = 0.08


def main() -> None:
    config = SimConfig(
        num_tors=NUM_TORS,
        ports_per_tor=PORTS,
        uplink_gbps=100.0,
        host_aggregate_gbps=200.0,
    )
    topology = ParallelNetwork(NUM_TORS, PORTS)
    sim_probe = NegotiaToRSimulator(config, topology, [])
    epoch_ns = sim_probe.timing.epoch_ns

    duration = 300 * epoch_ns
    fail_at, repair_at = 100 * epoch_ns, 200 * epoch_ns
    plan, failed = random_failure_plan(
        NUM_TORS, PORTS, FAILURE_RATIO, fail_at, repair_at, random.Random(3)
    )
    print(f"failing {len(failed)} of {2 * NUM_TORS * PORTS} directed fibers "
          f"at epoch 100, repairing at epoch 200\n")

    recorder = BandwidthRecorder(bin_ns=epoch_ns)
    sim = NegotiaToRSimulator(
        config,
        topology,
        all_to_all_workload(NUM_TORS, flow_bytes=30_000_000),
        failure_model=LinkFailureModel(NUM_TORS, PORTS, detect_epochs=3),
        failure_plan=plan,
        bandwidth_recorder=recorder,
    )
    sim.run(duration)

    def window_gbps(first_epoch: int, last_epoch: int) -> float:
        start, end = first_epoch * epoch_ns, last_epoch * epoch_ns
        total = sum(
            recorder.window_bytes(("rx", dst), start, end)
            for dst in range(NUM_TORS)
        )
        return total * 8.0 / (end - start)

    baseline = window_gbps(20, 100)
    print(f"{'window (epochs)':<18} {'fabric goodput':>15} {'vs pre-failure':>15}")
    print("-" * 52)
    for label, first, last in [
        ("20-100 healthy", 20, 100),
        ("100-110 failing", 100, 110),
        ("110-200 degraded", 110, 200),
        ("200-210 repairing", 200, 210),
        ("210-300 recovered", 210, 300),
    ]:
        gbps = window_gbps(first, last)
        print(f"{label:<18} {gbps:>11.0f} Gbps {gbps / baseline:>14.1%}")
    print()
    print("detection needs a few epochs of missing-dummy evidence; once the")
    print("dead fibers are excluded the fabric settles at the surviving")
    print("links' capacity, and repair restores the pre-failure level.")


if __name__ == "__main__":
    main()
