#!/usr/bin/env python3
"""Design-space tour: why NegotiaToR stays minimalist (section 3.5).

Runs the same 75%-load Hadoop workload under the scheduler variants the
paper explored and rejected — iterative matching, informative requests
(data-size and HoL-delay priority), stateful demand matrices, and a
ProjecToR-style per-port scheduler — and prints the paper's own verdict:
extra complexity does not buy proportionate performance.

Run:  python examples/design_space.py
"""

import random

from repro import NegotiaToRSimulator, ParallelNetwork, SimConfig
from repro.core.variants import make_scheduler
from repro.workloads.generators import poisson_workload
from repro.workloads.traces import hadoop

NUM_TORS, PORTS = 32, 4
DURATION_NS = 1_000_000
LOAD = 0.75

VARIANTS = [
    ("base", {}, "binary requests, no iteration (the paper's choice)"),
    ("iterative", {"iterations": 3}, "3 request/grant/accept rounds"),
    ("data-size", {}, "requests carry queued bytes; biggest backlog first"),
    ("hol-delay", {}, "requests carry weighted HoL delay (alpha=0.001)"),
    ("stateful", {}, "destinations track per-source demand matrices"),
    ("projector", {}, "per-port requests with waiting-delay priority"),
]


def run_variant(name: str, kwargs: dict):
    config = SimConfig(
        num_tors=NUM_TORS,
        ports_per_tor=PORTS,
        uplink_gbps=100.0,
        host_aggregate_gbps=200.0,
    )
    topology = ParallelNetwork(NUM_TORS, PORTS)
    scheduler = make_scheduler(
        name, topology, random.Random(config.seed), **kwargs
    )
    flows = poisson_workload(
        hadoop().truncated(1_000_000),
        LOAD,
        NUM_TORS,
        config.host_aggregate_gbps,
        DURATION_NS,
        random.Random(7),
    )
    sim = NegotiaToRSimulator(config, topology, flows, scheduler=scheduler)
    sim.run(DURATION_NS)
    return sim.summary(DURATION_NS)


def main() -> None:
    print(f"Hadoop workload at {LOAD:.0%} load, {NUM_TORS} ToRs x {PORTS} "
          f"ports, {DURATION_NS / 1e6:.0f} ms\n")
    print(f"{'variant':<12} {'99p mice FCT (us)':>18} {'goodput':>9}   notes")
    print("-" * 78)
    for name, kwargs, notes in VARIANTS:
        summary = run_variant(name, kwargs)
        fct_us = summary.mice_fct_p99_ns / 1e3
        print(f"{name:<12} {fct_us:>18.1f} {summary.goodput_normalized:>9.3f}"
              f"   {notes}")
    print()
    print("the paper's conclusion (section 3.5): none of the richer designs")
    print("beats binary, non-iterative, stateless requests by enough to")
    print("justify their complexity — several are strictly worse.")


if __name__ == "__main__":
    main()
