#!/usr/bin/env python3
"""Quickstart: simulate NegotiaToR on a Hadoop-like workload.

Builds a 32-ToR parallel-network fabric with the paper's timing (60 ns
predefined slots, 30 x 90 ns scheduled slots, 2x uplink speedup), offers a
50%-load trace-driven Poisson workload, and prints the headline metrics the
paper reports: 99th-percentile mice flow FCT and normalized goodput.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    NegotiaToRSimulator,
    ParallelNetwork,
    SimConfig,
    hadoop,
    poisson_workload,
)


def main() -> None:
    # 32 ToRs x 4 ports at 100 Gbps; hosts aggregate 200 Gbps per ToR, so
    # uplinks run at the paper's 2x speedup.
    config = SimConfig(
        num_tors=32,
        ports_per_tor=4,
        uplink_gbps=100.0,
        host_aggregate_gbps=200.0,
    )
    topology = ParallelNetwork(config.num_tors, config.ports_per_tor)

    duration_ns = 1_000_000  # 1 ms of simulated time
    flows = poisson_workload(
        hadoop().truncated(1_000_000),  # cap elephants for the short run
        load=0.5,
        num_tors=config.num_tors,
        host_aggregate_gbps=config.host_aggregate_gbps,
        duration_ns=duration_ns,
        rng=random.Random(42),
    )
    print(f"offering {len(flows)} flows over {duration_ns / 1e6:.1f} ms "
          f"at 50% load")

    sim = NegotiaToRSimulator(config, topology, flows)
    sim.run(duration_ns)

    summary = sim.summary(duration_ns)
    print(f"epoch length        : {sim.timing.epoch_ns / 1e3:.2f} us "
          f"({sim.timing.predefined_slots} predefined + "
          f"{sim.timing.scheduled_slots} scheduled slots)")
    print(f"guardband share     : {sim.timing.guard_fraction:.2%}")
    print(f"flows completed     : {summary.num_completed}/{summary.num_flows}")
    print(f"normalized goodput  : {summary.goodput_normalized:.3f}")
    print(f"99p mice FCT        : {summary.mice_fct_p99_ns / 1e3:.1f} us "
          f"({summary.mice_fct_p99_epochs:.1f} epochs)")
    print(f"mean mice FCT       : {summary.mice_fct_mean_ns / 1e3:.1f} us "
          f"({summary.mice_fct_mean_epochs:.1f} epochs)")
    print()
    print("the paper's headline: with piggybacking and priority queues, the")
    print("average mice flow beats the ~2-epoch scheduling delay entirely.")


if __name__ == "__main__":
    main()
