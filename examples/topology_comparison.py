#!/usr/bin/env python3
"""Topology comparison: parallel network vs thin-clos vs the baseline.

Sweeps the offered load and prints mice FCT and goodput for NegotiaToR on
both flat topologies and for the traffic-oblivious (rotor + VLB) baseline —
a miniature of the paper's Fig 9.  Also prints each fabric's physical
inventory (AWGRs, ports, wavelengths) to make the hardware trade-off
concrete: the parallel network needs few huge AWGRs, thin-clos many small
ones.

Run:  python examples/topology_comparison.py
"""

import random

from repro import (
    NegotiaToRSimulator,
    ObliviousSimulator,
    ParallelNetwork,
    SimConfig,
    ThinClos,
    hadoop,
    poisson_workload,
)

NUM_TORS, PORTS, AWGR_PORTS = 32, 4, 8
DURATION_NS = 1_000_000
LOADS = (0.25, 0.5, 0.75, 1.0)


def build(name: str, config: SimConfig):
    if name == "parallel":
        return NegotiaToRSimulator(
            config, ParallelNetwork(NUM_TORS, PORTS), flows(config)
        )
    if name == "thin-clos":
        return NegotiaToRSimulator(
            config, ThinClos(NUM_TORS, PORTS, AWGR_PORTS), flows(config)
        )
    return ObliviousSimulator(
        config, ThinClos(NUM_TORS, PORTS, AWGR_PORTS), flows(config)
    )


def flows(config: SimConfig):
    return poisson_workload(
        hadoop().truncated(1_000_000),
        build.load,  # set per sweep iteration below
        NUM_TORS,
        config.host_aggregate_gbps,
        DURATION_NS,
        random.Random(11),
    )


def main() -> None:
    parallel = ParallelNetwork(NUM_TORS, PORTS)
    thinclos = ThinClos(NUM_TORS, PORTS, AWGR_PORTS)
    print("fabric inventory")
    print(f"  parallel : {parallel.num_awgrs} AWGRs x {parallel.awgr_ports} "
          f"ports (needs high-port-count devices)")
    print(f"  thin-clos: {thinclos.num_awgrs} AWGRs x {thinclos.awgr_ports} "
          f"ports (readily available devices)")
    print()
    header = f"{'load':>5} | " + " | ".join(
        f"{name:^22}" for name in ("NT parallel", "NT thin-clos", "oblivious")
    )
    print(header)
    print(f"{'':>5} | " + " | ".join(
        f"{'FCT us':>10} {'goodput':>9}" for _ in range(3)
    ))
    print("-" * len(header))
    for load in LOADS:
        build.load = load
        cells = []
        for name in ("parallel", "thin-clos", "oblivious"):
            config = SimConfig(
                num_tors=NUM_TORS, ports_per_tor=PORTS,
                uplink_gbps=100.0, host_aggregate_gbps=200.0,
            )
            sim = build(name, config)
            sim.run(DURATION_NS)
            summary = sim.summary(DURATION_NS)
            cells.append(
                f"{summary.mice_fct_p99_ns / 1e3:>10.1f} "
                f"{summary.goodput_normalized:>9.3f}"
            )
        print(f"{load:>4.0%} | " + " | ".join(cells))
    print()
    print("both NegotiaToR fabrics behave comparably; the baseline's relayed")
    print("traffic saturates receivers at heavy load (Fig 9's crossover).")


if __name__ == "__main__":
    main()
