#!/usr/bin/env python3
"""Incast scenario: the scheduling-delay bypass in action (section 3.4).

Twenty ToRs simultaneously send a 1 KB flow to the same destination — the
partition/aggregate pattern that stresses any scheduled network.  We run the
same incast on NegotiaToR (both topologies) and on the Sirius-like
traffic-oblivious baseline, and show per-flow completion times.

NegotiaToR's predefined phase guarantees every pair one piggybacked packet
per epoch, so the whole incast completes in about two epochs regardless of
its degree, without a single scheduling decision.

Run:  python examples/incast_bypass.py
"""

import random

from repro import (
    NegotiaToRSimulator,
    ObliviousSimulator,
    ParallelNetwork,
    SimConfig,
    ThinClos,
    incast_finish_time_ns,
    incast_workload,
)

NUM_TORS, PORTS, AWGR_PORTS = 32, 4, 8
INJECT_NS = 10_000.0
DEGREE = 20


def build_config() -> SimConfig:
    return SimConfig(
        num_tors=NUM_TORS,
        ports_per_tor=PORTS,
        uplink_gbps=100.0,
        host_aggregate_gbps=200.0,
    )


def run_system(name: str):
    config = build_config()
    flows = incast_workload(
        NUM_TORS, DEGREE, dst=0, flow_bytes=1000,
        at_ns=INJECT_NS, rng=random.Random(1),
    )
    if name == "oblivious":
        sim = ObliviousSimulator(config, ThinClos(NUM_TORS, PORTS, AWGR_PORTS), flows)
    elif name == "thin-clos":
        sim = NegotiaToRSimulator(config, ThinClos(NUM_TORS, PORTS, AWGR_PORTS), flows)
    else:
        sim = NegotiaToRSimulator(config, ParallelNetwork(NUM_TORS, PORTS), flows)
    sim.run_until_complete(max_ns=50_000_000)
    return sim, flows


def main() -> None:
    print(f"incast: {DEGREE} sources -> ToR 0, 1 KB each, injected at "
          f"{INJECT_NS / 1e3:.0f} us\n")
    for name in ("parallel", "thin-clos", "oblivious"):
        sim, flows = run_system(name)
        finish_us = incast_finish_time_ns(flows, INJECT_NS) / 1e3
        fcts = sorted(f.fct_ns / 1e3 for f in flows)
        print(f"{name:>10}: finish time {finish_us:7.2f} us   "
              f"per-flow FCT min/median/max = "
              f"{fcts[0]:.2f}/{fcts[len(fcts) // 2]:.2f}/{fcts[-1]:.2f} us")
        if isinstance(sim, NegotiaToRSimulator):
            epochs = finish_us * 1e3 / sim.timing.epoch_ns
            print(f"{'':>10}  = {epochs:.1f} epochs — piggybacked, "
                  f"never scheduled")
    print()
    print("NegotiaToR finishes identically on both topologies (the")
    print("predefined phases are the same) and flat in the incast degree;")
    print("the oblivious design pays relay detours that grow with degree.")


if __name__ == "__main__":
    main()
