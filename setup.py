"""Package metadata for the NegotiaToR (SIGCOMM 2024) reproduction.

Kept as a plain setup.py (no [build-system] table) so pip falls back to the
legacy, non-isolated build path and `pip install -e .` works offline.
"""

from setuptools import find_packages, setup

setup(
    name="negotiator-repro",
    version="0.2.0",
    description=(
        "Reproduction of 'NegotiaToR: Towards A Simple Yet Effective "
        "On-demand Reconfigurable Datacenter Network'"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        # The tier-1 suite needs only pytest + hypothesis; the benchmark
        # harness (benchmarks/bench_*.py, incl. the engine hot-path suite)
        # additionally needs pytest-benchmark.
        "test": ["pytest", "hypothesis"],
        "bench": ["pytest", "pytest-benchmark"],
    },
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
