"""Setup shim: metadata lives in pyproject.toml.

Keeping a setup.py (and no [build-system] table) lets pip fall back to the
legacy, non-isolated build path, so `pip install -e .` works offline.
"""

from setuptools import setup

setup()
